// Tests for cilk::trace: the SPSC ring (overflow accounting, concurrent
// round-trip), session capture of a real scheduled run, Chrome-JSON export
// (event counts vs ring totals, begin/end nesting), and the what-if replay
// bridge (sim T1 vs measured serial work, cilkview bound checks).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/scheduler.hpp"
#include "sim/machine.hpp"
#include "trace/chrome.hpp"
#include "trace/replay.hpp"
#include "trace/ring.hpp"
#include "trace/session.hpp"
#include "trace/timeline.hpp"
#include "workloads/fib.hpp"
#include "workloads/qsort.hpp"

namespace cilkpp::trace {
namespace {

using cilkpp::rt::context;
using cilkpp::rt::scheduler;

event make_event(std::uint64_t t, event_kind k, std::uint64_t frame,
                 std::uint64_t aux64 = 0, std::uint32_t aux32 = 0,
                 std::uint16_t aux16 = 0, std::uint16_t worker = 0) {
  return event{t, frame, aux64, aux32, aux16, k, worker};
}

TEST(EventRing, RoundsCapacityUpToPowerOfTwo) {
  event_ring r(10);
  EXPECT_EQ(r.capacity(), 16u);
  event_ring tiny(0);
  EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(EventRing, OverflowDropsAreCountedNeverBlocking) {
  event_ring r(8);
  const std::size_t attempts = 20;
  std::size_t pushed = 0;
  for (std::size_t i = 0; i < attempts; ++i) {
    pushed += r.try_push(make_event(i, event_kind::spawn, i)) ? 1 : 0;
  }
  EXPECT_EQ(pushed, 8u);
  EXPECT_EQ(r.recorded(), 8u);
  EXPECT_EQ(r.dropped(), attempts - 8u);

  // Draining frees capacity; recording resumes and totals stay monotone.
  std::vector<event> out;
  EXPECT_EQ(r.pop_all(out), 8u);
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].frame, i);
  EXPECT_TRUE(r.try_push(make_event(99, event_kind::spawn, 99)));
  EXPECT_EQ(r.recorded(), 9u);
  EXPECT_EQ(r.dropped(), attempts - 8u);
}

TEST(EventRing, ConcurrentWriterReaderRoundTrip) {
  event_ring r(64);
  const std::uint64_t n = 200000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < n; ++i) {
      while (!r.try_push(make_event(i, event_kind::spawn, i))) {
        std::this_thread::yield();  // test wants every event through
      }
    }
  });
  std::vector<event> got;
  while (got.size() < n) {
    if (r.pop_all(got) == 0) std::this_thread::yield();
  }
  producer.join();
  ASSERT_EQ(got.size(), n);
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(got[i].frame, i) << "SPSC order violated at " << i;
    if (got[i].frame != i) break;
  }
  // The producer retried on full, so the drop counter only holds rejected
  // attempts that were later retried — recorded() counts each event once.
  EXPECT_EQ(r.recorded(), n);
}

// ---------------------------------------------------------------------------
// A hand-built single-worker trace with known gaps: checks the sweep's
// exclusive-time attribution and the replay's dag, deterministically.

TEST(Timeline, SweepAttributesExclusiveTimeAndReplayMatches) {
  const std::uint64_t root = 100, child = 200;
  std::vector<event> evs{
      make_event(0, event_kind::frame_begin, root, 0, 0,
                 static_cast<std::uint16_t>(frame_kind::root)),
      make_event(10, event_kind::spawn, root, child, 0),
      make_event(15, event_kind::sync_begin, root, 0, 1),
      make_event(20, event_kind::frame_begin, child, root, 1,
                 static_cast<std::uint16_t>(frame_kind::spawned)),
      make_event(30, event_kind::sync_begin, child, 0, 0, 1),
      make_event(30, event_kind::sync_end, child, 0, 0, 1),
      make_event(35, event_kind::frame_end, child),
      make_event(40, event_kind::sync_end, root, 0, 1),
      make_event(50, event_kind::frame_end, root),
  };
  timeline t = assemble({evs}, evs.size(), 0);
  EXPECT_EQ(t.anomalies, 0u);
  ASSERT_TRUE(t.has_root);
  EXPECT_EQ(t.span_ns(), 50u);

  const frame_info& rf = t.frames.at(root);
  ASSERT_EQ(rf.strand_ns.size(), 3u);  // spawn and sync are boundaries
  EXPECT_EQ(rf.strand_ns[0], 10u);     // begin → spawn
  EXPECT_EQ(rf.strand_ns[1], 5u);      // spawn → sync_begin
  EXPECT_EQ(rf.strand_ns[2], 10u);     // sync_end → end
  const frame_info& cf = t.frames.at(child);
  ASSERT_EQ(cf.strand_ns.size(), 2u);
  EXPECT_EQ(cf.strand_ns[0], 10u);
  EXPECT_EQ(cf.strand_ns[1], 5u);

  EXPECT_EQ(t.total_busy_ns(), 40u);
  EXPECT_EQ(t.lanes[0].busy_ns, 40u);
  EXPECT_EQ(t.lanes[0].scheduling_ns, 10u);  // waiting inside root's sync

  reconstruction rec = reconstruct_dag(t);
  EXPECT_EQ(rec.frames, 2u);
  EXPECT_EQ(rec.missing_frames, 0u);
  EXPECT_EQ(rec.measured_busy_ns, 40u);

  sim::machine_config cfg;
  cfg.processors = 1;
  const sim::sim_result r1 = sim::simulate(rec.g, cfg);
  EXPECT_EQ(r1.work, 40u);
  EXPECT_EQ(r1.makespan, 40u);  // 1 processor: T1 == measured serial work
}

TEST(Replay, DeepCalledChainReplaysIterativelyWithoutOverflow) {
  // A 200k-deep chain of called frames: the real run spreads this depth
  // across worker stacks, so the replay must not pile it onto one host
  // stack via recursion (it used to).
  timeline t;
  t.workers = 1;
  t.has_root = true;
  t.root = 1;
  const std::uint64_t depth = 200000;
  for (std::uint64_t i = 1; i <= depth; ++i) {
    frame_info f;
    f.ped = i;
    f.kind = i == 1 ? frame_kind::root : frame_kind::called;
    f.strand_ns = {1};
    if (i < depth) {
      f.controls.push_back({strand_control::type::call, i + 1});
      f.strand_ns.push_back(1);
    }
    t.frames.emplace(i, std::move(f));
  }
  reconstruction rec = reconstruct_dag(t);
  EXPECT_EQ(rec.frames, depth);
  EXPECT_EQ(rec.missing_frames, 0u);
  EXPECT_EQ(rec.measured_busy_ns, 2 * depth - 1);
}

TEST(Replay, CyclicChildLinksAreCutNotWalkedForever) {
  // A corrupted trace whose child links cycle back to the root: the walk
  // must terminate, replaying the revisited child as missing.
  timeline t;
  t.workers = 1;
  t.has_root = true;
  t.root = 1;
  frame_info root;
  root.ped = 1;
  root.kind = frame_kind::root;
  root.strand_ns = {5, 5};
  root.controls.push_back({strand_control::type::spawn, 2});
  frame_info child;
  child.ped = 2;
  child.kind = frame_kind::spawned;
  child.strand_ns = {3, 3};
  child.controls.push_back({strand_control::type::call, 1});  // back edge
  t.frames.emplace(1, std::move(root));
  t.frames.emplace(2, std::move(child));
  reconstruction rec = reconstruct_dag(t);
  EXPECT_EQ(rec.frames, 2u);
  EXPECT_EQ(rec.missing_frames, 1u);
  EXPECT_EQ(rec.measured_busy_ns, 16u);
}

// ---------------------------------------------------------------------------
// Minimal Chrome-trace JSON reader for validation: splits the traceEvents
// array into objects (tracking brace depth) and extracts name/ph/tid.

struct jevent {
  std::string name;
  std::string ph;
  int tid = -1;
};

std::string extract_string(const std::string& obj, const std::string& key) {
  const std::string probe = "\"" + key + "\":\"";
  const std::size_t at = obj.find(probe);
  if (at == std::string::npos) return {};
  const std::size_t start = at + probe.size();
  return obj.substr(start, obj.find('"', start) - start);
}

int extract_int(const std::string& obj, const std::string& key) {
  const std::string probe = "\"" + key + "\":";
  const std::size_t at = obj.find(probe);
  if (at == std::string::npos) return -1;
  return std::stoi(obj.substr(at + probe.size()));
}

std::vector<jevent> parse_chrome_events(const std::string& json) {
  std::vector<jevent> out;
  const std::size_t array_at = json.find("\"traceEvents\":[");
  EXPECT_NE(array_at, std::string::npos);
  std::size_t i = json.find('[', array_at) + 1;
  int depth = 0;
  std::size_t obj_start = 0;
  for (; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '{') {
      if (depth == 0) obj_start = i;
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0) {
        const std::string obj = json.substr(obj_start, i - obj_start + 1);
        out.push_back(jevent{extract_string(obj, "name"),
                             extract_string(obj, "ph"), extract_int(obj, "tid")});
      }
    } else if (c == ']' && depth == 0) {
      break;
    }
  }
  EXPECT_EQ(depth, 0) << "unbalanced braces in trace JSON";
  return out;
}

struct fib_capture {
  timeline t;
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t expected = 0;
};

fib_capture capture_fib(unsigned workers, unsigned n,
                        std::size_t ring_capacity = std::size_t{1} << 17) {
  scheduler sched(workers);
  session cap(sched, session_options{ring_capacity});
  std::uint64_t result = 0;
  sched.run([&](context& ctx) { result = workloads::fib(ctx, n); });
  fib_capture out;
  out.recorded = cap.recorded();
  out.dropped = cap.dropped();
  out.t = cap.assemble();
  out.expected = result;
  return out;
}

TEST(Session, CompiledOutSessionIsInert) {
  if (session::compiled_in) GTEST_SKIP() << "tracing is compiled in";
  scheduler sched(2);
  session cap(sched);
  EXPECT_FALSE(cap.active());
  sched.run([](context& ctx) { return workloads::fib(ctx, 10); });
  EXPECT_EQ(cap.recorded(), 0u);
  timeline t = cap.assemble();
  EXPECT_TRUE(t.frames.empty());
}

TEST(Session, CapturesConsistentFibTimelineOnFourWorkers) {
  if (!session::compiled_in) GTEST_SKIP() << "tracing compiled out";
  fib_capture cap = capture_fib(4, 18);
  EXPECT_EQ(cap.expected, 2584u);
  EXPECT_EQ(cap.dropped, 0u) << "raise ring_capacity: drops break the rest";
  EXPECT_EQ(cap.t.anomalies, 0u);
  ASSERT_TRUE(cap.t.has_root);
  EXPECT_EQ(static_cast<std::uint64_t>(cap.t.events.size()), cap.recorded);

  // Every spawned/called frame's parent is in the trace, and the spawn
  // provenance closes: each non-root frame appears in its parent's controls.
  std::size_t spawned = 0;
  for (const auto& [ped, f] : cap.t.frames) {
    EXPECT_TRUE(f.ended);
    EXPECT_EQ(f.strand_ns.size(), f.controls.size() + 1);
    if (f.kind == frame_kind::root) continue;
    ++spawned;
    auto parent = cap.t.frames.find(f.parent);
    ASSERT_NE(parent, cap.t.frames.end());
    bool referenced = false;
    for (const strand_control& c : parent->second.controls) {
      referenced |= (c.child == ped);
    }
    EXPECT_TRUE(referenced);
  }
  EXPECT_GT(spawned, 100u);  // fib(18) spawns thousands of frames

  // Lane busy time and per-frame exclusive time are two views of the same
  // attribution.
  std::uint64_t lane_busy = 0;
  for (const worker_lane& lane : cap.t.lanes) lane_busy += lane.busy_ns;
  EXPECT_EQ(lane_busy, cap.t.total_busy_ns());

  // Steal bookkeeping: the matrix, the lanes, and the event list agree.
  std::uint64_t matrix_total = 0;
  for (const auto& row : cap.t.steals_by_victim) {
    for (std::uint64_t c : row) matrix_total += c;
  }
  std::uint64_t lane_steals = 0;
  for (const worker_lane& lane : cap.t.lanes) lane_steals += lane.steals;
  EXPECT_EQ(matrix_total, cap.t.steals.size());
  EXPECT_EQ(lane_steals, cap.t.steals.size());

  // The tables render without dying and carry one row per worker.
  EXPECT_EQ(utilization_table(cap.t).rows(), 4u);
  EXPECT_EQ(steal_matrix_table(cap.t).rows(), 4u);
  EXPECT_EQ(steal_interval_table(cap.t).rows(), 4u);
}

TEST(ChromeExport, EventCountMatchesRingTotalsAndNestingIsWellFormed) {
  if (!session::compiled_in) GTEST_SKIP() << "tracing compiled out";
  fib_capture cap = capture_fib(4, 16);
  std::ostringstream os;
  write_chrome_trace(os, cap.t);
  const std::string json = os.str();

  const std::vector<jevent> events = parse_chrome_events(json);
  // One JSON event per recorded trace event: JSON count + counted drops
  // equals everything the runtime attempted to record.
  EXPECT_EQ(static_cast<std::uint64_t>(events.size()), cap.recorded);
  EXPECT_EQ(cap.recorded + cap.dropped,
            cap.t.recorded + cap.t.dropped);

  // Per-tid B/E nesting: E always closes the most recent open B of the
  // same name (frames and sync spans form a stack on each worker).
  std::vector<std::vector<std::string>> stacks(4);
  for (const jevent& e : events) {
    ASSERT_GE(e.tid, 0);
    ASSERT_LT(e.tid, 4);
    if (e.ph == "B") {
      stacks[static_cast<std::size_t>(e.tid)].push_back(e.name);
    } else if (e.ph == "E") {
      auto& stack = stacks[static_cast<std::size_t>(e.tid)];
      ASSERT_FALSE(stack.empty()) << "E without open B on tid " << e.tid;
      EXPECT_EQ(stack.back(), e.name);
      stack.pop_back();
    } else {
      EXPECT_EQ(e.ph, "i");
    }
  }
  for (const auto& stack : stacks) EXPECT_TRUE(stack.empty());
}

TEST(Replay, SimT1MatchesMeasuredSerialWorkWithinTenPercent) {
  if (!session::compiled_in) GTEST_SKIP() << "tracing compiled out";
  fib_capture cap = capture_fib(4, 18);
  ASSERT_EQ(cap.dropped, 0u);
  reconstruction rec = reconstruct_dag(cap.t);
  EXPECT_EQ(rec.missing_frames, 0u);
  EXPECT_EQ(rec.frames, cap.t.frames.size());
  ASSERT_GT(rec.measured_busy_ns, 0u);

  sim::machine_config cfg;
  cfg.processors = 1;
  cfg.policy = sim::spawn_policy::parent_first;
  const sim::sim_result r1 = sim::simulate(rec.g, cfg);
  const double measured = static_cast<double>(cap.t.total_busy_ns());
  const double simulated = static_cast<double>(r1.makespan);
  EXPECT_NEAR(simulated, measured, 0.10 * measured);
  // By construction they agree exactly: every exclusive nanosecond the
  // sweep attributed became dag work, and one processor never steals.
  EXPECT_EQ(r1.work, rec.measured_busy_ns);
}

TEST(Replay, WhatIfPredictionsRespectCilkviewBounds) {
  if (!session::compiled_in) GTEST_SKIP() << "tracing compiled out";
  scheduler sched(4);
  session cap(sched, session_options{std::size_t{1} << 17});
  auto data = workloads::random_doubles(std::size_t{1} << 16, 7);
  sched.run([&](context& ctx) {
    workloads::qsort(ctx, data.data(), data.data() + data.size(), 1024);
  });
  timeline t = cap.assemble();
  ASSERT_TRUE(t.has_root);

  const std::vector<unsigned> procs{1, 2, 4, 8};
  what_if_report report = what_if(t, procs);
  ASSERT_EQ(report.points.size(), procs.size());
  EXPECT_TRUE(report.within_bounds);
  EXPECT_GT(report.prof.work, 0u);
  for (const what_if_point& pt : report.points) {
    EXPECT_GT(pt.predicted_ns, 0u);
    EXPECT_LE(pt.predicted_speedup, pt.upper_bound * 1.05);
    EXPECT_GT(pt.burdened_estimate, 0.0);
  }
  // More processors never slow the simulated schedule down by more than
  // the stochastic steal noise.
  EXPECT_LT(report.points[3].predicted_ns,
            report.points[0].predicted_ns);
  EXPECT_EQ(what_if_table(report).rows(), procs.size());
}

}  // namespace
}  // namespace cilkpp::trace
