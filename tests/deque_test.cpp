// Tests for the Chase–Lev work-stealing deque and the locked baseline.
//
// The owner-side tests exercise LIFO semantics and growth; the concurrent
// stress tests check the fundamental safety property: every pushed element
// is consumed exactly once, across any interleaving of pops and steals.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "deque/abp_deque.hpp"
#include "deque/chase_lev.hpp"
#include "deque/locked_deque.hpp"
#include "support/rng.hpp"

namespace cilkpp {
namespace {

using payload = std::uint64_t*;

template <typename D>
class DequeTest : public ::testing::Test {};

using deque_types = ::testing::Types<chase_lev_deque<payload>, locked_deque<payload>,
                                     abp_deque<payload>>;
TYPED_TEST_SUITE(DequeTest, deque_types);

TYPED_TEST(DequeTest, OwnerLifoOrder) {
  TypeParam d;
  std::uint64_t items[3] = {10, 20, 30};
  for (auto& x : items) d.push_bottom(&x);
  EXPECT_EQ(d.pop_bottom(), &items[2]);
  EXPECT_EQ(d.pop_bottom(), &items[1]);
  EXPECT_EQ(d.pop_bottom(), &items[0]);
  EXPECT_EQ(d.pop_bottom(), std::nullopt);
}

TYPED_TEST(DequeTest, ThiefTakesOldestFirst) {
  TypeParam d;
  std::uint64_t items[3] = {10, 20, 30};
  for (auto& x : items) d.push_bottom(&x);
  payload out = nullptr;
  ASSERT_EQ(d.steal(out), steal_result::success);
  EXPECT_EQ(out, &items[0]);  // top = oldest = shallowest frame
  ASSERT_EQ(d.steal(out), steal_result::success);
  EXPECT_EQ(out, &items[1]);
  // Owner still gets the newest.
  EXPECT_EQ(d.pop_bottom(), &items[2]);
}

TYPED_TEST(DequeTest, StealFromEmptyReportsEmpty) {
  TypeParam d;
  payload out = nullptr;
  EXPECT_EQ(d.steal(out), steal_result::empty);
  d.push_bottom(reinterpret_cast<payload>(0x8));
  (void)d.pop_bottom();
  EXPECT_EQ(d.steal(out), steal_result::empty);
}

TYPED_TEST(DequeTest, SizeEstimateTracksContents) {
  TypeParam d;
  EXPECT_TRUE(d.empty_estimate());
  std::uint64_t x = 1;
  d.push_bottom(&x);
  d.push_bottom(&x);
  EXPECT_EQ(d.size_estimate(), 2);
  (void)d.pop_bottom();
  EXPECT_EQ(d.size_estimate(), 1);
}

TEST(ChaseLev, GrowthPreservesAllElements) {
  chase_lev_deque<payload> d(8);
  std::vector<std::uint64_t> items(10000);
  for (auto& x : items) d.push_bottom(&x);
  // Pop everything back in LIFO order; growth must not lose or reorder.
  for (std::size_t i = items.size(); i-- > 0;) {
    auto got = d.pop_bottom();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, &items[i]);
  }
  EXPECT_EQ(d.pop_bottom(), std::nullopt);
}

TEST(ChaseLev, InterleavedPushPopAcrossGrowth) {
  chase_lev_deque<payload> d(8);
  std::vector<std::uint64_t> items(1000);
  std::size_t next = 0;
  // Sawtooth: push 3, pop 1, repeatedly; wraps the circular buffer.
  std::vector<payload> shadow;
  while (next < items.size()) {
    for (int k = 0; k < 3 && next < items.size(); ++k) {
      d.push_bottom(&items[next]);
      shadow.push_back(&items[next]);
      ++next;
    }
    auto got = d.pop_bottom();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, shadow.back());
    shadow.pop_back();
  }
}

// Concurrency stress: one owner pushing/popping, T thieves stealing.
// Every element must be consumed exactly once (checked via per-element
// atomic counters) and nothing may be lost.
template <typename D>
void stress_exactly_once(unsigned thieves, std::size_t n) {
  D d;
  std::vector<std::atomic<std::uint32_t>> consumed(n);
  for (auto& c : consumed) c.store(0);
  std::vector<std::uint64_t> items(n);
  for (std::size_t i = 0; i < n; ++i) items[i] = i;

  std::atomic<bool> owner_done{false};
  std::atomic<std::size_t> total_consumed{0};

  auto consume = [&](payload p) {
    const std::size_t idx = static_cast<std::size_t>(p - items.data());
    consumed[idx].fetch_add(1);
    total_consumed.fetch_add(1);
  };

  std::vector<std::thread> thief_threads;
  thief_threads.reserve(thieves);
  for (unsigned t = 0; t < thieves; ++t) {
    thief_threads.emplace_back([&] {
      payload out = nullptr;
      while (!owner_done.load(std::memory_order_acquire) ||
             total_consumed.load(std::memory_order_acquire) < n) {
        if (d.steal(out) == steal_result::success) consume(out);
        if (total_consumed.load(std::memory_order_acquire) >= n) break;
      }
    });
  }

  // Owner: push all, popping every third to mix operations.
  for (std::size_t i = 0; i < n; ++i) {
    d.push_bottom(&items[i]);
    if (i % 3 == 2) {
      if (auto got = d.pop_bottom()) consume(*got);
    }
  }
  // Drain whatever the thieves haven't taken.
  while (auto got = d.pop_bottom()) consume(*got);
  owner_done.store(true, std::memory_order_release);
  for (auto& t : thief_threads) t.join();

  // Thieves may exit before the final drain; finish any leftovers here.
  while (auto got = d.pop_bottom()) consume(*got);

  EXPECT_EQ(total_consumed.load(), n);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(consumed[i].load(), 1u) << "element " << i;
}

TEST(AbpDeque, ReportsFullAtCapacity) {
  abp_deque<payload> d(8);
  std::uint64_t items[9];
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(d.push_bottom(&items[i]));
  EXPECT_FALSE(d.push_bottom(&items[8]));  // bounded: reports full
  EXPECT_EQ(d.pop_bottom(), &items[7]);
  EXPECT_TRUE(d.push_bottom(&items[8]));
}

TEST(AbpDeque, ResetAfterEmptyReusesSlots) {
  abp_deque<payload> d(4);
  std::uint64_t x = 1;
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(d.push_bottom(&x));
    EXPECT_EQ(d.pop_bottom(), &x);
    EXPECT_EQ(d.pop_bottom(), std::nullopt);
  }
  // After many empty resets the deque still holds a full batch.
  std::uint64_t items[4];
  for (auto& i : items) EXPECT_TRUE(d.push_bottom(&i));
  payload out = nullptr;
  EXPECT_EQ(d.steal(out), steal_result::success);
  EXPECT_EQ(out, &items[0]);
}

TEST(AbpDeque, StressFourThieves) {
  stress_exactly_once<abp_deque<payload>>(4, 8000);  // fits the default cap
}

// Randomized differential test: drive chase_lev with a random op sequence
// and compare against a simple reference (owner-side only; steals checked
// against the reference front).
TEST(ChaseLev, DifferentialAgainstReferenceModel) {
  xoshiro256 rng(99);
  chase_lev_deque<payload> d(8);
  std::deque<payload> reference;
  std::vector<std::uint64_t> storage(10000);
  std::size_t next = 0;
  for (int step = 0; step < 50000; ++step) {
    switch (rng.below(3)) {
      case 0:
        if (next < storage.size()) {
          d.push_bottom(&storage[next]);
          reference.push_back(&storage[next]);
          ++next;
        }
        break;
      case 1: {
        const auto got = d.pop_bottom();
        if (reference.empty()) {
          EXPECT_EQ(got, std::nullopt);
        } else {
          ASSERT_TRUE(got.has_value());
          EXPECT_EQ(*got, reference.back());
          reference.pop_back();
        }
        break;
      }
      case 2: {
        payload out = nullptr;
        const auto r = d.steal(out);
        if (reference.empty()) {
          EXPECT_EQ(r, steal_result::empty);
        } else {
          ASSERT_EQ(r, steal_result::success);
          EXPECT_EQ(out, reference.front());
          reference.pop_front();
        }
        break;
      }
    }
  }
}

TEST(ChaseLev, StressOneThief) {
  stress_exactly_once<chase_lev_deque<payload>>(1, 50000);
}

TEST(ChaseLev, StressFourThieves) {
  stress_exactly_once<chase_lev_deque<payload>>(4, 50000);
}

TEST(LockedDeque, StressFourThieves) {
  stress_exactly_once<locked_deque<payload>>(4, 20000);
}

TEST(ChaseLev, StressSmallInitialCapacityForcesGrowthUnderStealing) {
  // Growth while thieves are active is the most delicate code path.
  chase_lev_deque<payload> d(8);
  constexpr std::size_t n = 20000;
  std::vector<std::uint64_t> items(n);
  std::vector<std::atomic<std::uint32_t>> consumed(n);
  for (auto& c : consumed) c.store(0);
  std::atomic<std::size_t> total{0};
  std::atomic<bool> done{false};

  std::thread thief([&] {
    payload out = nullptr;
    while (!done.load() || total.load() < n) {
      if (d.steal(out) == steal_result::success) {
        consumed[static_cast<std::size_t>(out - items.data())].fetch_add(1);
        total.fetch_add(1);
      }
      if (total.load() >= n) break;
    }
  });

  // Push in bursts so the buffer grows repeatedly while stealing runs.
  for (std::size_t i = 0; i < n; ++i) d.push_bottom(&items[i]);
  while (auto got = d.pop_bottom()) {
    consumed[static_cast<std::size_t>(*got - items.data())].fetch_add(1);
    total.fetch_add(1);
  }
  done.store(true);
  thief.join();

  EXPECT_EQ(total.load(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(consumed[i].load(), 1u);
}

}  // namespace
}  // namespace cilkpp
