// Tests for the discrete-event work-stealing simulator and the baseline
// schedulers: the laws of Sec. 2 must hold for every simulated execution,
// and one-processor runs must take exactly T1.
#include <gtest/gtest.h>

#include "dag/analysis.hpp"
#include "dag/builder.hpp"
#include <algorithm>
#include <utility>
#include "dag/generators.hpp"
#include "sim/baselines.hpp"
#include "sim/machine.hpp"

namespace cilkpp::sim {
namespace {

using dag::analyze;
using dag::graph;
using dag::metrics;

machine_config cfg(unsigned p, std::uint64_t latency = 10, std::uint64_t seed = 1) {
  machine_config c;
  c.processors = p;
  c.steal_latency = latency;
  c.seed = seed;
  return c;
}

TEST(Machine, OneProcessorTakesExactlyT1) {
  for (const graph& g : {dag::fib_dag(12, 2, 5), dag::loop_dag(256, 8, 3),
                         dag::random_sp_dag(200, 9, 7)}) {
    const metrics m = analyze(g);
    const sim_result r = simulate(g, cfg(1));
    EXPECT_EQ(r.makespan, m.work);  // no steals, no overhead on one processor
    EXPECT_EQ(r.work, m.work);
    EXPECT_EQ(r.steals, 0u);
    EXPECT_DOUBLE_EQ(r.utilization, 1.0);
  }
}

TEST(Machine, ChainGainsNothingFromProcessors) {
  const graph g = dag::chain(100, 10);
  const sim_result r1 = simulate(g, cfg(1));
  const sim_result r8 = simulate(g, cfg(8));
  EXPECT_EQ(r1.makespan, 1000u);
  EXPECT_EQ(r8.makespan, 1000u);  // span law: a serial chain cannot speed up
}

class MachineLaws
    : public ::testing::TestWithParam<std::tuple<unsigned, std::uint64_t>> {};

TEST_P(MachineLaws, WorkAndSpanLawsHold) {
  const auto [procs, seed] = GetParam();
  for (const graph& g :
       {dag::fib_dag(14, 3, 20), dag::loop_dag(512, 4, 25),
        dag::wide_fan(64, 500), dag::random_sp_dag(400, 30, seed + 17)}) {
    const metrics m = analyze(g);
    const sim_result r = simulate(g, cfg(procs, 10, seed));
    // Work Law (1): TP ≥ T1/P, i.e. P·TP ≥ T1.
    EXPECT_GE(static_cast<std::uint64_t>(procs) * r.makespan, m.work);
    // Span Law (2): TP ≥ T∞.
    EXPECT_GE(r.makespan, m.span);
    // All work executed exactly once.
    EXPECT_EQ(r.work, m.work);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MachineLaws,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u, 16u, 64u),
                       ::testing::Values(1u, 2u, 3u)));

TEST(Machine, DeterministicInSeed) {
  const graph g = dag::fib_dag(14, 3, 20);
  const sim_result a = simulate(g, cfg(8, 10, 42));
  const sim_result b = simulate(g, cfg(8, 10, 42));
  const sim_result c = simulate(g, cfg(8, 10, 43));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.steals, b.steals);
  // A different seed gives a different (but still law-abiding) schedule;
  // makespans may coincide, steal patterns rarely do.
  EXPECT_TRUE(c.makespan >= analyze(g).span);
}

TEST(Machine, GreedyBoundWithConstant) {
  // Sec. 3.1: TP ≤ T1/P + O(T∞). With steal latency L, the constant in the
  // O(·) is a small multiple of L; check a generous c = 4(L+1).
  const std::uint64_t latency = 10;
  for (unsigned procs : {2u, 4u, 8u, 16u}) {
    for (const graph& g : {dag::fib_dag(16, 3, 20), dag::loop_dag(2048, 8, 10)}) {
      const metrics m = analyze(g);
      const sim_result r = simulate(g, cfg(procs, latency, 5));
      const double bound = static_cast<double>(m.work) / procs +
                           4.0 * static_cast<double>(latency + 1) *
                               static_cast<double>(m.span);
      EXPECT_LE(static_cast<double>(r.makespan), bound)
          << "P=" << procs << " work=" << m.work << " span=" << m.span;
    }
  }
}

TEST(Machine, NearLinearSpeedupWhenParallelismDominates) {
  // Parallelism ≈ 512·25/(4·25+log splits) ≫ 8: expect ≥ 80% of perfect.
  const graph g = dag::loop_dag(4096, 4, 50);
  const metrics m = analyze(g);
  ASSERT_GT(m.parallelism(), 100.0);
  const sim_result r = simulate(g, cfg(8, 5, 3));
  EXPECT_GT(r.speedup(m.work), 0.8 * 8);
}

TEST(Machine, SpeedupCappedByParallelism) {
  // Fig. 2's dag has parallelism 2: 16 processors can't beat speedup 2.
  const graph g = dag::figure2_dag();
  const sim_result r = simulate(g, cfg(16, 1, 9));
  EXPECT_LE(r.speedup(18), 2.0 + 1e-9);
}

TEST(Machine, StealsAreZeroOnOneProcessorAndBoundedOtherwise) {
  const graph g = dag::fib_dag(15, 3, 30);
  EXPECT_EQ(simulate(g, cfg(1)).steals, 0u);
  const sim_result r = simulate(g, cfg(8, 10, 4));
  // Every steal moves one strand; can't exceed strand count.
  EXPECT_LE(r.steals, g.num_vertices());
  EXPECT_GE(r.steal_attempts, r.steals);
}

TEST(Machine, StackBoundPTimesSerial) {
  // Sec. 3.1: "on P processors, a Cilk++ program consumes at most P times
  // the stack space of a single-processor execution."
  const graph g = dag::fib_dag(14, 2, 10);
  const std::uint64_t s1 = g.max_depth() + 1;  // serial stack in frames
  for (unsigned procs : {1u, 2u, 4u, 8u, 16u}) {
    const sim_result r = simulate(g, cfg(procs, 10, 7));
    EXPECT_LE(r.peak_stack_frames, procs * s1) << "P=" << procs;
  }
}

TEST(Machine, ChildFirstKeepsSpawnLoopResidencyLow) {
  // The Sec. 3.1 loop: work stealing holds O(P) enabled-but-waiting strands;
  // the naive FIFO queue materializes all n.
  const unsigned procs = 4;
  const graph g = dag::spawn_loop_dag(10000, 20);
  const sim_result ws = simulate(g, cfg(procs, 10, 11));
  EXPECT_LE(ws.peak_residency, 64u);  // O(P · depth), depth = 2 here

  baseline_config bc;
  bc.processors = procs;
  const sim_result fifo = simulate_central_queue(g, bc, queue_order::fifo);
  EXPECT_GT(fifo.peak_residency, 5000u);  // blows up with n
}

TEST(Machine, ParentFirstPolicyAlsoCorrect) {
  machine_config c = cfg(8, 10, 2);
  c.policy = spawn_policy::parent_first;
  const graph g = dag::fib_dag(14, 3, 20);
  const metrics m = analyze(g);
  const sim_result r = simulate(g, c);
  EXPECT_EQ(r.work, m.work);
  EXPECT_GE(r.makespan, m.span);
}

TEST(Machine, AdversaryOfflineWindowDelaysWork) {
  // One processor, offline for [0, 1000): everything waits.
  const graph g = dag::chain(10, 10);
  machine_config c = cfg(1);
  c.offline = {{offline_interval{0, 1000}}};
  const sim_result r = simulate(g, c);
  EXPECT_GE(r.makespan, 1100u);
}

TEST(Machine, StealingRescuesOfflineProcessorsWork) {
  // P=4, highly parallel dag; processor 0 goes offline early. With work
  // stealing the others absorb its deque; makespan stays near T1/3.
  const graph g = dag::loop_dag(1024, 4, 100);
  const metrics m = analyze(g);
  machine_config c = cfg(4, 10, 8);
  c.offline = {{offline_interval{50, 100000000}}};
  const sim_result ws = simulate(g, c);
  // 3 online processors: expect between T1/4 and ~1.5·T1/3.
  EXPECT_LT(static_cast<double>(ws.makespan),
            1.5 * static_cast<double>(m.work) / 3.0);

  // Static local scheduling strands processor 0's queued work until the
  // window ends: makespan blows up to the window edge.
  baseline_config bc;
  bc.processors = 4;
  bc.offline = c.offline;
  const sim_result st = simulate_static_local(g, bc);
  EXPECT_GT(st.makespan, ws.makespan);
}

// --- Baselines. ---

TEST(Baselines, CentralQueueOneProcessorMatchesWork) {
  const graph g = dag::fib_dag(12, 2, 5);
  const metrics m = analyze(g);
  baseline_config bc;
  bc.processors = 1;
  for (queue_order o : {queue_order::fifo, queue_order::lifo}) {
    const sim_result r = simulate_central_queue(g, bc, o);
    EXPECT_EQ(r.makespan, m.work);
    EXPECT_EQ(r.work, m.work);
  }
}

TEST(Baselines, CentralQueueBlowsUpOnSpawnLoopEitherOrder) {
  // Under eager expansion the producer never yields to its children, so the
  // shared queue grows with n regardless of pop order; only depth-first
  // (child-first) scheduling keeps residency bounded.
  baseline_config bc;
  bc.processors = 4;
  const graph g = dag::spawn_loop_dag(10000, 20);
  EXPECT_GT(simulate_central_queue(g, bc, queue_order::lifo).peak_residency, 5000u);
  EXPECT_GT(simulate_central_queue(g, bc, queue_order::fifo).peak_residency, 5000u);
}

TEST(Machine, ParentFirstStealingAlsoBlowsUpOnSpawnLoop) {
  // Ablation E14: the help-first policy leaves children in the producer's
  // deque faster than thieves drain them — the memory guarantee of Sec. 3.1
  // belongs to the child-first (work-first) policy specifically.
  machine_config c = cfg(4, 10, 11);
  c.policy = spawn_policy::parent_first;
  const graph g = dag::spawn_loop_dag(10000, 20);
  EXPECT_GT(simulate(g, c).peak_residency, 1000u);
}

TEST(Baselines, LawsHoldForAllSchedulers) {
  const graph g = dag::random_sp_dag(300, 20, 21);
  const metrics m = analyze(g);
  baseline_config bc;
  bc.processors = 8;
  for (const sim_result& r :
       {simulate_central_queue(g, bc, queue_order::fifo),
        simulate_central_queue(g, bc, queue_order::lifo),
        simulate_static_local(g, bc)}) {
    EXPECT_GE(8 * r.makespan, m.work);
    EXPECT_GE(r.makespan, m.span);
    EXPECT_EQ(r.work, m.work);
  }
}

TEST(Baselines, StaticLocalNeverMovesWork) {
  // With everything seeded on processor 0 (single source), static local
  // scheduling runs the whole dag there: makespan == T1 despite P=8.
  const graph g = dag::fib_dag(12, 2, 5);
  const metrics m = analyze(g);
  baseline_config bc;
  bc.processors = 8;
  const sim_result r = simulate_static_local(g, bc);
  EXPECT_EQ(r.makespan, m.work);
  EXPECT_EQ(r.per_proc[0].busy, m.work);
}

TEST(Machine, TraceCoversEveryStrandConsistently) {
  const graph g = dag::fib_dag(12, 3, 10);
  machine_config c = cfg(4, 5, 3);
  c.collect_trace = true;
  const sim_result r = simulate(g, c);
  ASSERT_EQ(r.trace.size(), g.num_vertices());
  std::vector<int> seen(g.num_vertices(), 0);
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> busy(4);
  for (const trace_entry& e : r.trace) {
    ++seen[e.vertex];
    EXPECT_EQ(e.end - e.start, g.vertex_work(e.vertex));
    EXPECT_LE(e.end, r.makespan);
    busy[e.proc].emplace_back(e.start, e.end);
  }
  for (int count : seen) EXPECT_EQ(count, 1);  // each strand exactly once
  // No processor runs two strands at the same time.
  for (auto& intervals : busy) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i)
      EXPECT_GE(intervals[i].first, intervals[i - 1].second);
  }
}

TEST(Machine, TraceRespectsDependencies) {
  const graph g = dag::random_sp_dag(200, 8, 77);
  machine_config c = cfg(8, 3, 7);
  c.collect_trace = true;
  const sim_result r = simulate(g, c);
  std::vector<std::uint64_t> start(g.num_vertices()), finish(g.num_vertices());
  for (const trace_entry& e : r.trace) {
    start[e.vertex] = e.start;
    finish[e.vertex] = e.end;
  }
  for (dag::vertex_id v = 0; v < g.num_vertices(); ++v)
    for (dag::vertex_id s2 : g.successors(v))
      EXPECT_GE(start[s2], finish[v]) << v << " -> " << s2;
}

// --- Mutex-guarded strands (experiment E12's contention machinery). ---

TEST(Locks, CriticalSectionsSerialize) {
  // A fan of 16 strands, each entirely inside one critical section of the
  // same mutex: whatever P is, the makespan is the serial sum.
  dag::sp_builder b;
  for (int i = 0; i < 16; ++i) {
    b.begin_spawn();
    b.begin_locked(0);
    b.account(100);
    b.end_locked();
    b.end_spawn();
  }
  b.sync();
  const graph g = std::move(b).finish();

  machine_config c = cfg(8, 1, 3);
  c.lock_transfer_cost = 0;
  const sim_result r = simulate(g, c);
  EXPECT_GE(r.makespan, 1600u);  // 16 sections x 100, serialized
  EXPECT_GT(r.lock_contentions, 0u);
  EXPECT_GT(r.lock_wait_time, 0u);
}

TEST(Locks, TransferCostChargedOnCrossProcessorHandoffOnly) {
  dag::sp_builder b;
  for (int i = 0; i < 8; ++i) {
    b.begin_spawn();
    b.begin_locked(0);
    b.account(50);
    b.end_locked();
    b.end_spawn();
  }
  b.sync();
  const graph g = std::move(b).finish();

  machine_config c1 = cfg(1, 1, 3);
  c1.lock_transfer_cost = 1000;
  const sim_result serial = simulate(g, c1);
  EXPECT_EQ(serial.lock_transfers, 0u);  // one processor: no handoffs

  machine_config c4 = cfg(4, 1, 3);
  c4.lock_transfer_cost = 1000;
  const sim_result parallel = simulate(g, c4);
  EXPECT_GT(parallel.lock_transfers, 0u);
  // Handoffs make the contended 4-processor run slower than serial — the
  // paper's Sec. 5 anecdote, now measured.
  EXPECT_GT(parallel.makespan, serial.makespan);
}

TEST(Locks, IndependentMutexesDoNotInterfere) {
  // Two strand groups on two different locks: they serialize within the
  // group but run in parallel across groups.
  dag::sp_builder b;
  for (int lock = 0; lock < 2; ++lock) {
    for (int i = 0; i < 8; ++i) {
      b.begin_spawn();
      b.begin_locked(static_cast<std::uint32_t>(lock));
      b.account(100);
      b.end_locked();
      b.end_spawn();
    }
  }
  b.sync();
  const graph g = std::move(b).finish();
  machine_config c = cfg(4, 1, 5);
  c.lock_transfer_cost = 0;
  const sim_result r = simulate(g, c);
  // Perfect 2-lock parallelism would give ~800; full serialization 1600.
  EXPECT_LT(r.makespan, 1400u);  // well below full serialization (1600+)
  EXPECT_GE(r.makespan, 800u);
}

TEST(Locks, UnlockedDagReportsNoLockActivity) {
  const graph g = dag::fib_dag(12, 3, 10);
  const sim_result r = simulate(g, cfg(4));
  EXPECT_EQ(r.lock_contentions, 0u);
  EXPECT_EQ(r.lock_transfers, 0u);
  EXPECT_EQ(r.lock_wait_time, 0u);
}

TEST(Locks, LawsStillHoldWithLocks) {
  // Locks can only slow things down; the Work/Span Laws still bound below.
  dag::sp_builder b;
  for (int i = 0; i < 32; ++i) {
    b.begin_spawn();
    b.account(200);
    b.begin_locked(0);
    b.account(10);
    b.end_locked();
    b.end_spawn();
  }
  b.sync();
  const graph g = std::move(b).finish();
  const metrics m = analyze(g);
  for (unsigned procs : {1u, 4u, 16u}) {
    const sim_result r = simulate(g, cfg(procs, 5, 7));
    EXPECT_GE(r.makespan, m.span);
    EXPECT_GE(static_cast<std::uint64_t>(procs) * r.makespan, m.work);
    EXPECT_EQ(r.work, m.work);
  }
}

}  // namespace
}  // namespace cilkpp::sim
