// Tests for src/pedigree: rank-list semantics, the hash chain, cross-engine
// strand identity (runtime vs elision vs both cilkscreen engines vs replay),
// the pedigree-seeded DPRNG, and single-strand replay pruning.
#include <algorithm>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cilkscreen/screen_context.hpp"
#include "pedigree/dprng.hpp"
#include "pedigree/pedigree.hpp"
#include "pedigree/replay.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/serial.hpp"

namespace {

using namespace cilkpp;

// --- The pedigree value type. ---

TEST(PedigreeType, ToStringParseRoundtrip) {
  for (const ped::pedigree& p :
       {ped::pedigree{}, ped::pedigree{{0}}, ped::pedigree{{0, 0}},
        ped::pedigree{{3, 1, 4, 1, 5, 9, 2, 6}},
        ped::pedigree{{0xffffffffffffffffULL, 0}}}) {
    EXPECT_EQ(ped::parse(ped::to_string(p)), p) << ped::to_string(p);
  }
}

TEST(PedigreeType, ParseAcceptsBareAndSpacedForms) {
  const ped::pedigree want{{1, 2, 3}};
  EXPECT_EQ(ped::parse("<1,2,3>"), want);
  EXPECT_EQ(ped::parse("1,2,3"), want);
  EXPECT_EQ(ped::parse("1 2 3"), want);
  EXPECT_EQ(ped::parse("< 1, 2, 3 >"), want);
}

TEST(PedigreeType, ParseMalformedIsEmpty) {
  EXPECT_TRUE(ped::parse("").empty());
  EXPECT_TRUE(ped::parse("<>").empty());
  EXPECT_TRUE(ped::parse("nonsense").empty());
  EXPECT_TRUE(ped::parse("<1,x,3>").empty());
}

TEST(PedigreeType, BeforeIsSerialStrandOrder) {
  // A frame's strand at rank r runs before the child it spawns at r, which
  // runs before the continuation at r+1: <0> < <0,0> < <0,5> < <1>.
  const ped::pedigree a{{0}}, child{{0, 0}}, deep{{0, 5}}, cont{{1}};
  EXPECT_TRUE(ped::before(a, child));
  EXPECT_TRUE(ped::before(child, deep));
  EXPECT_TRUE(ped::before(deep, cont));
  EXPECT_FALSE(ped::before(cont, a));
  EXPECT_FALSE(ped::before(a, a));  // irreflexive
}

TEST(PedigreeType, IsPrefix) {
  const ped::pedigree root{{0}}, sub{{0, 3}}, other{{1}};
  EXPECT_TRUE(ped::is_prefix(ped::pedigree{}, root));
  EXPECT_TRUE(ped::is_prefix(root, sub));
  EXPECT_TRUE(ped::is_prefix(sub, sub));
  EXPECT_FALSE(ped::is_prefix(sub, root));
  EXPECT_FALSE(ped::is_prefix(other, sub));
}

// --- proc_pedigrees: the analyzers' bookkeeping obeys the rank rules. ---

TEST(ProcPedigrees, RankRulesMatchTheSpec) {
  ped::proc_pedigrees peds;
  EXPECT_EQ(peds.strand(0), (ped::pedigree{{0}}));  // root's first strand
  peds.on_child(0, 1);                              // spawn or call
  EXPECT_EQ(peds.strand(1), (ped::pedigree{{0, 0}}));  // child extends <0>
  EXPECT_EQ(peds.strand(0), (ped::pedigree{{1}}));     // continuation
  peds.on_sync(0);
  EXPECT_EQ(peds.strand(0), (ped::pedigree{{2}}));  // post-sync strand
  peds.on_child(0, 2);
  EXPECT_EQ(peds.strand(2), (ped::pedigree{{2, 0}}));
}

TEST(ProcPedigrees, HashShortcutsMatchMaterializedHash) {
  ped::proc_pedigrees peds;
  peds.on_child(0, 1);
  peds.on_child(1, 2);
  peds.on_sync(1);
  for (std::uint32_t p : {0u, 1u, 2u}) {
    EXPECT_EQ(peds.strand_hash(p), ped::hash(peds.strand(p)));
    EXPECT_EQ(peds.strand_hash_at(p, 7), ped::hash(peds.strand_at(p, 7)));
  }
}

// --- The DPRNG. ---

TEST(Dprng, StreamMatchesProcPedigreeDraws) {
  ped::proc_pedigrees peds;
  peds.on_child(0, 1);
  ped::dprng_stream s(peds.strand(1));
  for (int i = 0; i < 8; ++i) EXPECT_EQ(s.next(), peds.draw(1));
}

TEST(Dprng, DrawAtIsRandomAccess) {
  ped::dprng_stream a(ped::pedigree{{0, 2, 1}});
  ped::dprng_stream b(ped::pedigree{{0, 2, 1}});
  std::vector<std::uint64_t> seq;
  for (int i = 0; i < 10; ++i) seq.push_back(a.next());
  for (int i = 9; i >= 0; --i) {
    EXPECT_EQ(b.draw_at(static_cast<std::uint64_t>(i) + 1), seq[i]);
  }
}

TEST(Dprng, UserSeedForksTheStream) {
  const ped::pedigree p{{0, 1}};
  ped::dprng_stream plain(p);
  ped::dprng_stream seeded(p, 42);
  EXPECT_NE(plain.next(), seeded.next());
}

TEST(Dprng, BelowIsInRangeAndUnitIsInUnitInterval) {
  ped::dprng_stream s(ped::pedigree{{5}});
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(s.below(17), 17u);
    const double u = s.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

#if CILKPP_PEDIGREE_ENABLED

// --- Cross-engine strand identity. ---

// A fixed spawn/call/sync tree, generic over the engine context. Records
// (strand_id, first draw) at every visit; order of collection is
// schedule-dependent under the runtime, so comparisons sort first.
template <typename Ctx>
void walk(Ctx& ctx, int depth,
          std::vector<std::pair<std::uint64_t, std::uint64_t>>& out,
          std::mutex& mu) {
  {
    std::lock_guard lock(mu);
    out.emplace_back(ctx.strand_id(), ctx.dprng_draw());
  }
  if (depth == 0) return;
  ctx.spawn([&, depth](Ctx& c) { walk(c, depth - 1, out, mu); });
  ctx.call([&, depth](Ctx& c) { walk(c, depth - 1, out, mu); });
  ctx.sync();
  {
    std::lock_guard lock(mu);
    out.emplace_back(ctx.strand_id(), ctx.dprng_draw());
  }
}

using id_draws = std::vector<std::pair<std::uint64_t, std::uint64_t>>;

id_draws sorted(id_draws v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(CrossEngine, AllEnginesAssignIdenticalStrandIdsAndDraws) {
  constexpr int depth = 5;
  std::mutex mu;

  id_draws serial;
  {
    rt::serial_context ctx;
    walk(ctx, depth, serial, mu);
  }
  ASSERT_FALSE(serial.empty());
  serial = sorted(std::move(serial));

  for (unsigned workers : {1u, 4u}) {
    id_draws rt_ids;
    rt::scheduler sched(workers);
    sched.run([&](rt::context& ctx) { walk(ctx, depth, rt_ids, mu); });
    EXPECT_EQ(sorted(std::move(rt_ids)), serial) << workers << " workers";
  }

  {
    id_draws ids;
    screen::detector d;
    screen::run_under_detector(
        d, [&](screen::screen_context& ctx) { walk(ctx, depth, ids, mu); });
    EXPECT_EQ(sorted(std::move(ids)), serial) << "SP-bags engine";
  }
  {
    id_draws ids;
    screen::order_detector d;
    screen::run_under_detector(
        d, [&](screen::order_context& ctx) { walk(ctx, depth, ids, mu); });
    EXPECT_EQ(sorted(std::move(ids)), serial) << "SP-order engine";
  }
  {
    id_draws ids;
    ped::replay_context ctx;  // full replay, no pruning
    walk(ctx, depth, ids, mu);
    EXPECT_EQ(sorted(std::move(ids)), serial) << "replay engine";
  }
}

TEST(CrossEngine, RuntimePedigreeHashIsStrandId) {
  rt::scheduler sched(2);
  sched.run([](rt::context& ctx) {
    EXPECT_EQ(ped::hash(ctx.pedigree()), ctx.strand_id());
    ctx.spawn([](rt::context& c) {
      EXPECT_EQ(ped::hash(c.pedigree()), c.strand_id());
    });
    ctx.sync();
    EXPECT_EQ(ped::hash(ctx.pedigree()), ctx.strand_id());
  });
}

TEST(CrossEngine, ScreenPedigreeMatchesRuntimePedigree) {
  // The same tree position gets the same rank list under the runtime and
  // under a screen engine — compare materialized pedigrees, not just hashes.
  std::vector<ped::pedigree> rt_leaves;
  std::mutex mu;
  rt::scheduler sched(1);
  sched.run([&](rt::context& ctx) {
    ctx.spawn([&](rt::context& c) {
      std::lock_guard lock(mu);
      rt_leaves.push_back(c.pedigree());
    });
    ctx.spawn([&](rt::context& c) {
      std::lock_guard lock(mu);
      rt_leaves.push_back(c.pedigree());
    });
    ctx.sync();
  });

  std::vector<ped::pedigree> scr_leaves;
  screen::detector d;
  screen::run_under_detector(d, [&](screen::screen_context& ctx) {
    ctx.spawn(
        [&](screen::screen_context& c) { scr_leaves.push_back(c.pedigree()); });
    ctx.spawn(
        [&](screen::screen_context& c) { scr_leaves.push_back(c.pedigree()); });
    ctx.sync();
  });

  auto order = [](const ped::pedigree& a, const ped::pedigree& b) {
    return ped::before(a, b);
  };
  std::sort(rt_leaves.begin(), rt_leaves.end(), order);
  std::sort(scr_leaves.begin(), scr_leaves.end(), order);
  EXPECT_EQ(rt_leaves, scr_leaves);
}

// --- Single-strand replay. ---

// The replay walker: spawn-heavy tree with per-frame work accounting and a
// noted write at every leaf.
void replay_tree(ped::replay_context& ctx, int depth, std::uint64_t* sink) {
  ctx.account(1);
  if (depth == 0) {
    ctx.note_write(sink, sizeof *sink, "leaf");
    *sink += 1;
    return;
  }
  for (int i = 0; i < 2; ++i) {
    ctx.spawn([&, depth](ped::replay_context& c) {
      replay_tree(c, depth - 1, sink);
    });
  }
  ctx.sync();
}

TEST(Replay, FullReplayExecutesEverything) {
  std::uint64_t sink = 0;
  ped::replay_context ctx;
  replay_tree(ctx, 6, &sink);
  EXPECT_EQ(sink, 64u);  // all 2^6 leaves ran
  EXPECT_TRUE(ctx.reached());  // no target: trivially reached
  EXPECT_EQ(ctx.frames_skipped(), 0u);
}

TEST(Replay, PrunedReplayReachesTargetAndSkipsOffPathWork) {
  // Capture a deep leaf's pedigree from a full replay…
  ped::pedigree target;
  std::uint64_t sink = 0;
  std::uint64_t full_work = 0;
  {
    ped::replay_context full;
    full.set_write_observer(
        [&](const ped::replay_context::write_event& e) { target = e.ped; });
    replay_tree(full, 6, &sink);
    full_work = full.executed_work();
  }
  ASSERT_FALSE(target.empty());

  // …then replay only that strand: it must be reached, with most of the
  // tree skipped and strictly less work executed.
  sink = 0;
  ped::replay_context pruned(target);
  replay_tree(pruned, 6, &sink);
  EXPECT_TRUE(pruned.reached());
  EXPECT_EQ(sink, 1u);  // exactly the target leaf wrote
  EXPECT_GT(pruned.frames_skipped(), 0u);
  EXPECT_LT(pruned.executed_work(), full_work);
}

TEST(Replay, ReplayedStrandKeepsItsPedigreeAndDraws) {
  // The pruned replay must assign the target strand the SAME pedigree and
  // the same dprng stream as the full run — pruning consumes ranks for
  // skipped children without renaming anything.
  ped::pedigree target;
  std::uint64_t full_draw = 0;
  std::uint64_t sink = 0;
  {
    ped::replay_context full;
    full.set_write_observer([&](const ped::replay_context::write_event& e) {
      target = e.ped;
      full_draw = ped::dprng_stream(e.ped).next();
    });
    replay_tree(full, 5, &sink);
  }
  ped::pedigree replayed;
  std::uint64_t replay_draw = 0;
  ped::replay_context pruned(target);
  pruned.set_write_observer([&](const ped::replay_context::write_event& e) {
    replayed = e.ped;
    replay_draw = ped::dprng_stream(e.ped).next();
  });
  sink = 0;
  replay_tree(pruned, 5, &sink);
  EXPECT_EQ(replayed, target);
  EXPECT_EQ(replay_draw, full_draw);
}

TEST(Replay, TargetNotInProgramIsNotReached) {
  std::uint64_t sink = 0;
  ped::replay_context ctx(ped::pedigree{{99, 99, 99}});
  replay_tree(ctx, 4, &sink);
  EXPECT_FALSE(ctx.reached());
  EXPECT_EQ(sink, 0u);  // nothing on that spine exists
}

#endif  // CILKPP_PEDIGREE_ENABLED

}  // namespace
