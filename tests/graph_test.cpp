// The certification ring for src/graph (ISSUE 8): structural invariants of
// parallel CSR construction, bitwise generator determinism across engines
// and worker counts, RMAT skew sanity, and differential oracles for the
// analytics kernels — BC exactly equal to the serial Brandes reference
// (the kernels are deterministic by construction: fixed-order per-vertex
// sums, no atomics), PageRank within 1e-9 L1 of the serial push reference.
// Race certification under cilkscreen rides both here (small graphs, both
// detector engines) and in stress_test's chaos graph leg.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "cilkscreen/detector.hpp"
#include "cilkscreen/screen_context.hpp"
#include "cilkscreen/sporder.hpp"
#include "dag/recorder.hpp"
#include "graph/bc.hpp"
#include "graph/csr.hpp"
#include "graph/generate.hpp"
#include "graph/histogram.hpp"
#include "graph/pagerank.hpp"
#include "graph/ref.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/serial.hpp"

namespace cilkpp::graph {
namespace {

using rt::scheduler;
using rt::serial_context;

// --- Work histogram unit checks. ---

TEST(WorkHistogram, BucketsByBitWidth) {
  work_histogram h;
  h.add(0);   // bucket 0
  h.add(1);   // bit_width 1
  h.add(2);   // bit_width 2
  h.add(3);   // bit_width 2
  h.add(9);   // bit_width 4
  EXPECT_EQ(h.items, 5u);
  EXPECT_EQ(h.work, 15u);
  EXPECT_EQ(h.max_work, 9u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[4], 1u);
  EXPECT_EQ(h.top_bucket(), 4u);
  EXPECT_DOUBLE_EQ(h.mean_work(), 3.0);

  work_histogram other;
  other.add(1U << 20);
  h.merge(other);
  EXPECT_EQ(h.items, 6u);
  EXPECT_EQ(h.max_work, 1u << 20);
  EXPECT_EQ(h.top_bucket(), 21u);

  // Monoid identity: merging the identity changes nothing.
  work_histogram copy = h;
  hist_merge::reduce(h, hist_merge::identity());
  EXPECT_EQ(h, copy);
}

// --- CSR structural invariants. ---

TEST(Csr, ParallelBuildMatchesSerialAndValidates) {
  serial_context root;
  const std::vector<edge> edges = uniform_edges(root, 500, 4000, 7);
  const csr serial = build_csr_serial(500, edges);

  std::string why;
  ASSERT_TRUE(validate(serial, &why)) << why;
  EXPECT_EQ(serial.vertices(), 500u);
  EXPECT_EQ(serial.edges(), 4000u);

  for (const unsigned workers : {1u, 4u}) {
    scheduler sched(workers);
    const csr parallel = sched.run(
        [&](rt::context& ctx) { return build_csr(ctx, 500, edges); });
    ASSERT_TRUE(validate(parallel, &why)) << why;
    EXPECT_EQ(parallel, serial) << "workers=" << workers;
  }

  // Degree sum equals the edge count (the offsets telescope).
  std::uint64_t degree_sum = 0;
  for (std::uint32_t v = 0; v < serial.vertices(); ++v)
    degree_sum += serial.degree(v);
  EXPECT_EQ(degree_sum, serial.edges());
}

TEST(Csr, RoundTripEdgeListCsr) {
  serial_context root;
  const csr g = uniform_graph(root, 300, 2500, 11);
  // to_edge_list emits row-major sorted edges; rebuilding from them must
  // reproduce the graph exactly, and re-expanding must reproduce the list.
  const std::vector<edge> list = to_edge_list(g);
  const csr rebuilt = build_csr_serial(g.vertices(), list);
  EXPECT_EQ(rebuilt, g);
  EXPECT_EQ(to_edge_list(rebuilt), list);
}

TEST(Csr, TransposeMatchesSerialAndInverts) {
  serial_context root;
  const csr g = uniform_graph(root, 400, 3000, 13);
  const csr ts = transpose_serial(g);
  std::string why;
  ASSERT_TRUE(validate(ts, &why)) << why;

  for (const unsigned workers : {1u, 4u}) {
    scheduler sched(workers);
    const csr tp =
        sched.run([&](rt::context& ctx) { return transpose(ctx, g); });
    EXPECT_EQ(tp, ts) << "workers=" << workers;
  }

  // edge_ref cross-links: transposed edge (v <- u, ref k) must point at
  // g's edge k = (u -> v).
  for (std::uint32_t v = 0; v < ts.vertices(); ++v) {
    for (std::uint64_t k = ts.offsets[v]; k < ts.offsets[v + 1]; ++k) {
      const std::uint32_t u = ts.targets[k];
      const std::uint64_t r = ts.edge_ref[k];
      EXPECT_EQ(g.targets[r], v);
      EXPECT_GE(r, g.offsets[u]);
      EXPECT_LT(r, g.offsets[u + 1]);
    }
  }

  // Double transpose restores the adjacency structure.
  csr tt = transpose_serial(ts);
  tt.edge_ref.clear();
  EXPECT_EQ(tt.offsets, g.offsets);
  EXPECT_EQ(tt.targets, g.targets);
}

TEST(Csr, ValidateCatchesCorruption) {
  serial_context root;
  csr g = uniform_graph(root, 50, 300, 5);
  ASSERT_TRUE(validate(g));
  csr bad = g;
  bad.targets[0] = 1000;  // out of range
  EXPECT_FALSE(validate(bad));
  bad = g;
  std::swap(bad.offsets[1], bad.offsets[2]);
  if (bad.offsets[1] != bad.offsets[2]) EXPECT_FALSE(validate(bad));
  bad = g;
  if (bad.degree(0) >= 2 && bad.targets[0] != bad.targets[1]) {
    std::swap(bad.targets[0], bad.targets[1]);
    EXPECT_FALSE(validate(bad));  // row no longer sorted
  }
}

// --- Generator determinism: the graph is a pure function of the seed. ---

TEST(Generators, SameSeedBitIdenticalAcrossEnginesWorkersAndGrains) {
  const csr ref = uniform_graph_serial(1000, 8000, 42);
  const csr rmat_ref = rmat_graph_serial(10, 8000, 42);

  serial_context root;
  EXPECT_EQ(uniform_graph(root, 1000, 8000, 42), ref);
  EXPECT_EQ(rmat_graph(root, 10, 8000, 42), rmat_ref);

  for (const unsigned workers : {1u, 4u}) {
    scheduler sched(workers);
    for (const std::uint64_t grain : {std::uint64_t{0}, std::uint64_t{17}}) {
      EXPECT_EQ(sched.run([&](rt::context& ctx) {
                  return uniform_graph(ctx, 1000, 8000, 42, grain);
                }),
                ref)
          << "workers=" << workers << " grain=" << grain;
      EXPECT_EQ(sched.run([&](rt::context& ctx) {
                  return rmat_graph(ctx, 10, 8000, 42, {}, grain);
                }),
                rmat_ref)
          << "workers=" << workers << " grain=" << grain;
    }
  }

  // Different seeds give different graphs (sanity against a constant fn).
  EXPECT_NE(uniform_graph_serial(1000, 8000, 43), ref);
  EXPECT_NE(rmat_graph_serial(10, 8000, 43), rmat_ref);
}

TEST(Generators, NoSelfLoopsAndInRange) {
  serial_context root;
  for (const edge e : uniform_edges(root, 64, 5000, 9)) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_LT(e.src, 64u);
    EXPECT_LT(e.dst, 64u);
  }
  for (const edge e : rmat_edges(root, 6, 5000, 9)) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_LT(e.src, 64u);
    EXPECT_LT(e.dst, 64u);
  }
}

TEST(Generators, RmatSkewTopDecileDegreeMass) {
  // RMAT's recursive bias concentrates out-edges on hub vertices; a
  // uniform graph spreads them. The top decile of vertices by out-degree
  // should own most RMAT edges and only a modest uniform share.
  const csr rmat = rmat_graph_serial(12, 50000, 3);
  const csr unif = uniform_graph_serial(1u << 12, 50000, 3);
  const double rmat_mass = top_decile_degree_mass(rmat);
  const double unif_mass = top_decile_degree_mass(unif);
  EXPECT_GT(rmat_mass, 0.3);
  EXPECT_LT(unif_mass, 0.25);
  EXPECT_GT(rmat_mass, unif_mass + 0.1);
}

// --- Pivot sampling. ---

TEST(Pivots, DistinctDeterministicAndExactWhenSaturated) {
  const auto p = sample_pivots(100, 8, 5);
  EXPECT_EQ(p.size(), 8u);
  auto sorted = p;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
  for (const std::uint32_t v : p) EXPECT_LT(v, 100u);
  EXPECT_EQ(sample_pivots(100, 8, 5), p);   // deterministic
  EXPECT_NE(sample_pivots(100, 8, 6), p);   // seed matters
  const auto all = sample_pivots(10, 10, 5);
  std::vector<std::uint32_t> iota(10);
  std::iota(iota.begin(), iota.end(), 0u);
  EXPECT_EQ(all, iota);
  EXPECT_EQ(sample_pivots(10, 99, 5), iota);
}

// --- Betweenness centrality. ---

TEST(Betweenness, HandComputedPathGraph) {
  // 0 -> 1 -> 2 -> 3. With all pivots, dependency sums are exact directed
  // BC: vertex 1 carries (0,2),(0,3); vertex 2 carries (0,3),(1,3).
  const csr g = build_csr_serial(4, {{0, 1}, {1, 2}, {2, 3}});
  const csr gt = transpose_serial(g);
  scheduler sched(2);
  const bc_result r = sched.run([&](rt::context& ctx) {
    return betweenness(ctx, g, gt, bc_options{.pivots = 4, .seed = 1});
  });
  const std::vector<double> expected{0.0, 2.0, 2.0, 0.0};
  EXPECT_EQ(r.centrality, expected);
  EXPECT_EQ(r.pivots.size(), 4u);
}

TEST(Betweenness, HandComputedDiamond) {
  // 0 -> {1,2} -> 3: two shortest 0->3 paths, half through each middle.
  const csr g = build_csr_serial(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  const csr gt = transpose_serial(g);
  scheduler sched(2);
  const bc_result r = sched.run([&](rt::context& ctx) {
    return betweenness(ctx, g, gt, bc_options{.pivots = 4, .seed = 1});
  });
  const std::vector<double> expected{0.0, 0.5, 0.5, 0.0};
  EXPECT_EQ(r.centrality, expected);
}

TEST(Betweenness, ExactDifferentialVsSerialReference) {
  // All-pivots BC on a small RMAT graph: the parallel kernel must equal
  // the independently-written serial Brandes bitwise (fixed-order sums).
  const csr g = rmat_graph_serial(7, 1200, 21);
  const csr gt = transpose_serial(g);
  const std::vector<double> expected =
      bc_serial(g, gt, sample_pivots(g.vertices(), g.vertices(), 1));

  for (const unsigned workers : {1u, 4u}) {
    scheduler sched(workers);
    const bc_result r = sched.run([&](rt::context& ctx) {
      return betweenness(ctx, g, gt,
                         bc_options{.pivots = g.vertices(), .seed = 1});
    });
    EXPECT_EQ(r.centrality, expected) << "workers=" << workers;
  }

  serial_context root;
  EXPECT_EQ(betweenness(root, g, gt,
                        bc_options{.pivots = g.vertices(), .seed = 1})
                .centrality,
            expected);
}

TEST(Betweenness, PivotSampledMatchesReferenceWithSamePivots) {
  const csr g = uniform_graph_serial(600, 4800, 17);
  const csr gt = transpose_serial(g);
  const bc_options opt{.pivots = 12, .seed = 9};
  const std::vector<double> expected =
      bc_serial(g, gt, sample_pivots(g.vertices(), opt.pivots, opt.seed));
  scheduler sched(4);
  const bc_result r = sched.run(
      [&](rt::context& ctx) { return betweenness(ctx, g, gt, opt); });
  EXPECT_EQ(r.centrality, expected);
  EXPECT_EQ(r.pivots, sample_pivots(g.vertices(), opt.pivots, opt.seed));
  // The forward phase recorded at least one level per pivot, with work.
  EXPECT_GE(r.levels.size(), r.pivots.size());
  std::uint64_t total_work = 0;
  for (const iteration_stats& lvl : r.levels) total_work += lvl.hist.work;
  EXPECT_GT(total_work, 0u);
}

// --- PageRank. ---

TEST(Pagerank, UniformOnCycle) {
  // On a directed cycle every vertex keeps rank 1/n at every iteration.
  std::vector<edge> edges;
  for (std::uint32_t v = 0; v < 64; ++v) edges.push_back({v, (v + 1) % 64});
  const csr g = build_csr_serial(64, edges);
  const csr gt = transpose_serial(g);
  scheduler sched(2);
  const pagerank_result r = sched.run([&](rt::context& ctx) {
    return pagerank(ctx, g, gt, pagerank_options{.iterations = 5});
  });
  for (const double x : r.rank) EXPECT_NEAR(x, 1.0 / 64, 1e-15);
  EXPECT_EQ(r.residuals.size(), 5u);
}

TEST(Pagerank, DifferentialVsSerialReference) {
  const csr g = rmat_graph_serial(9, 6000, 33);  // has dangling vertices
  const csr gt = transpose_serial(g);
  const pagerank_options opt{.iterations = 15};
  const pagerank_serial_result expected =
      pagerank_serial(g, gt, opt.damping, opt.iterations);

  for (const unsigned workers : {1u, 4u}) {
    scheduler sched(workers);
    const pagerank_result r = sched.run(
        [&](rt::context& ctx) { return pagerank(ctx, g, gt, opt); });
    ASSERT_EQ(r.rank.size(), expected.rank.size());
    double l1 = 0.0;
    for (std::size_t i = 0; i < r.rank.size(); ++i)
      l1 += std::abs(r.rank[i] - expected.rank[i]);
    EXPECT_LT(l1, 1e-9) << "workers=" << workers;
    ASSERT_EQ(r.residuals.size(), expected.residuals.size());
    for (std::size_t i = 0; i < r.residuals.size(); ++i)
      EXPECT_NEAR(r.residuals[i], expected.residuals[i], 1e-9);
    // Probability mass is conserved.
    double sum = 0.0;
    for (const double x : r.rank) sum += x;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    // Per-sweep stats cover every vertex.
    ASSERT_EQ(r.iters.size(), r.residuals.size());
    EXPECT_EQ(r.iters[0].hist.items, g.vertices());
  }
}

TEST(Pagerank, EarlyExitOnTolerance) {
  const csr g = uniform_graph_serial(200, 1600, 4);
  const csr gt = transpose_serial(g);
  scheduler sched(2);
  const pagerank_result r = sched.run([&](rt::context& ctx) {
    return pagerank(ctx, g, gt,
                    pagerank_options{.iterations = 100, .tolerance = 1e-10});
  });
  EXPECT_LT(r.residuals.size(), 100u);
  EXPECT_LT(r.residuals.back(), 1e-10);
}

// --- cilkscreen certification: both kernels, both detector engines, on a
// reduced graph. Every shared-array access in the kernels is reported via
// the instrument shims, so a phase-discipline violation would surface as a
// race report here. ---

template <typename Detector>
void certify_kernels_race_free() {
  const csr g = rmat_graph_serial(6, 600, 8);
  const csr gt = transpose_serial(g);
  Detector d;
  screen::run_under_detector(
      d, [&](screen::basic_screen_context<Detector>& ctx) {
        const bc_result bc = betweenness(
            ctx, g, gt, bc_options{.pivots = 4, .seed = 2, .grain = 8});
        const pagerank_result pr = pagerank(
            ctx, g, gt, pagerank_options{.iterations = 3, .grain = 8});
        EXPECT_EQ(bc.centrality.size(), g.vertices());
        EXPECT_EQ(pr.rank.size(), g.vertices());
      });
  EXPECT_FALSE(d.found_races());
}

TEST(ScreenCertification, KernelsRaceFreeUnderSpBags) {
  certify_kernels_race_free<screen::detector>();
}

TEST(ScreenCertification, KernelsRaceFreeUnderSpOrder) {
  certify_kernels_race_free<screen::order_detector>();
}

// The kernels also run under the dag recorder (the cilkview/bench path).
TEST(Engines, KernelsRunUnderRecorder) {
  const csr g = uniform_graph_serial(200, 1600, 2);
  const csr gt = transpose_serial(g);
  const std::vector<double> bc_expected =
      bc_serial(g, gt, sample_pivots(g.vertices(), 4, 1));
  std::vector<double> bc_got;
  dag::record([&](dag::recorder_context& ctx) {
    bc_got = betweenness(ctx, g, gt, bc_options{.pivots = 4, .seed = 1})
                 .centrality;
  });
  EXPECT_EQ(bc_got, bc_expected);
}

}  // namespace
}  // namespace cilkpp::graph
