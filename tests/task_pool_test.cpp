// Task-pool statistics and the leak-balance oracle (the allocator behind
// every cilk_spawn): per-class alloc/free/reuse accounting, the oversize
// heap fallback, and global balance once schedulers are quiescent.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>

#include "runtime/scheduler.hpp"
#include "runtime/task_pool.hpp"

namespace {

using namespace cilkpp::rt;

task_pool_stats snap() { return task_pool_totals(); }

/// Task destruction may lag run()'s return by a beat: the freeing worker
/// decrements the parent's pending count before destroy_task runs.
bool wait_balanced(unsigned timeout_ms = 2000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!task_pool_totals().balanced()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      return task_pool_totals().balanced();
    }
    std::this_thread::yield();
  }
  return true;
}

std::uint64_t tree_sum(context& ctx, unsigned depth) {
  if (depth == 0) return 1;
  std::uint64_t a = 0;
  ctx.spawn([&a, depth](context& child) { a = tree_sum(child, depth - 1); });
  const std::uint64_t b = tree_sum(ctx, depth - 1);
  ctx.sync();
  return a + b;
}

TEST(TaskPoolSizeClass, BranchFreeMapMatchesClassBoundaries) {
  using pool_detail::size_class;
  // Exact boundaries of {64, 128, 256, 512}: the branch-free bit_width
  // formula must agree with "smallest class that fits" at every edge.
  EXPECT_EQ(size_class(0), 0u);
  EXPECT_EQ(size_class(1), 0u);
  EXPECT_EQ(size_class(63), 0u);
  EXPECT_EQ(size_class(64), 0u);
  EXPECT_EQ(size_class(65), 1u);
  EXPECT_EQ(size_class(128), 1u);
  EXPECT_EQ(size_class(129), 2u);
  EXPECT_EQ(size_class(256), 2u);
  EXPECT_EQ(size_class(257), 3u);
  EXPECT_EQ(size_class(512), 3u);
  EXPECT_GE(size_class(513), pool_detail::num_classes);  // heap fallback
  EXPECT_GE(size_class(4096), pool_detail::num_classes);
  // Exhaustive against the reference definition over the pooled range.
  for (std::size_t size = 0; size <= 600; ++size) {
    std::size_t expected = pool_detail::num_classes;
    for (std::size_t c = 0; c < pool_detail::num_classes; ++c) {
      if (size <= pool_detail::class_sizes[c]) {
        expected = c;
        break;
      }
    }
    EXPECT_EQ(size_class(size), expected) << "size " << size;
  }
}

TEST(TaskPoolFreelist, IntrusiveLifoReusesBlocksInStackOrder) {
  // The freed block itself stores the next pointer, so the list must hand
  // blocks back newest-first with no side storage.
  void* a = task_allocate(64);
  void* b = task_allocate(64);
  void* c = task_allocate(64);
  ASSERT_NE(a, b);
  ASSERT_NE(b, c);
  task_deallocate(a, 64);
  task_deallocate(b, 64);
  task_deallocate(c, 64);
  EXPECT_EQ(task_allocate(64), c);
  EXPECT_EQ(task_allocate(64), b);
  EXPECT_EQ(task_allocate(64), a);
  task_deallocate(a, 64);
  task_deallocate(b, 64);
  task_deallocate(c, 64);
}

TEST(TaskPoolStats, CountsAllocsAndFreesPerClass) {
  const task_pool_stats before = snap();
  void* p = task_allocate(64);  // class 0
  void* q = task_allocate(200); // class 2 (256)
  task_deallocate(p, 64);
  task_deallocate(q, 200);
  const task_pool_stats after = snap();
  EXPECT_EQ(after.classes[0].block_size, 64u);
  EXPECT_EQ(after.classes[2].block_size, 256u);
  EXPECT_EQ(after.classes[0].allocs, before.classes[0].allocs + 1);
  EXPECT_EQ(after.classes[0].frees, before.classes[0].frees + 1);
  EXPECT_EQ(after.classes[2].allocs, before.classes[2].allocs + 1);
  EXPECT_EQ(after.classes[2].frees, before.classes[2].frees + 1);
}

TEST(TaskPoolStats, ReuseCountedWhenServedFromFreeList) {
  // Warm the 128-byte list, then allocate again: the second allocation must
  // be served from the list and counted as a reuse.
  void* warm = task_allocate(100);
  task_deallocate(warm, 100);
  const task_pool_stats before = snap();
  void* p = task_allocate(128);
  const task_pool_stats after = snap();
  EXPECT_EQ(p, warm);  // LIFO recycling hands back the same block
  EXPECT_EQ(after.classes[1].reused, before.classes[1].reused + 1);
  task_deallocate(p, 128);
}

TEST(TaskPoolStats, OversizeRequestsCountedOnFallbackRow) {
  const task_pool_stats before = snap();
  void* p = task_allocate(4096);
  const task_pool_stats mid = snap();
  task_deallocate(p, 4096);
  const task_pool_stats after = snap();
  const auto& row = after.classes[pool_detail::num_classes];
  EXPECT_EQ(row.block_size, 0u);  // heap fallback, no fixed class size
  EXPECT_EQ(row.allocs, before.classes[pool_detail::num_classes].allocs + 1);
  EXPECT_EQ(row.frees, before.classes[pool_detail::num_classes].frees + 1);
  EXPECT_EQ(mid.live(), before.live() + 1);
  EXPECT_EQ(after.live(), before.live());
}

TEST(TaskPoolStats, LiveTracksOutstandingBlocks) {
  const task_pool_stats before = snap();
  void* a = task_allocate(64);
  void* b = task_allocate(64);
  EXPECT_EQ(snap().live(), before.live() + 2);
  task_deallocate(a, 64);
  EXPECT_EQ(snap().live(), before.live() + 1);
  task_deallocate(b, 64);
  EXPECT_EQ(snap().live(), before.live());
}

TEST(TaskPoolStats, BalancedAfterSchedulerRuns) {
  // The leak oracle: every spawn allocates exactly one task block and every
  // executed task frees it, so the pool balances at quiescence no matter
  // which worker freed which block.
  const task_pool_stats before = snap();
  {
    scheduler sched(4);
    for (int round = 0; round < 4; ++round) {
      const std::uint64_t sum =
          sched.run([](context& ctx) { return tree_sum(ctx, 10); });
      EXPECT_EQ(sum, std::uint64_t{1} << 10);
    }
    ASSERT_TRUE(wait_balanced());
  }
  const task_pool_stats after = snap();
  EXPECT_TRUE(after.balanced())
      << after.total_allocs() << " allocs vs " << after.total_frees()
      << " frees";
  // 4 rounds x (2^10 - 1) spawns actually flowed through the pool...
  EXPECT_GE(after.total_allocs(), before.total_allocs() + 4 * 1023);
  // ...and repeat runs recycle blocks instead of hitting operator new.
  std::uint64_t reused = 0, before_reused = 0;
  for (const auto& c : after.classes) reused += c.reused;
  for (const auto& c : before.classes) before_reused += c.reused;
  EXPECT_GT(reused, before_reused);
}

TEST(TaskPoolStats, BalanceSurvivesExceptionUnwinds) {
  scheduler sched(2);
  for (int round = 0; round < 8; ++round) {
    try {
      sched.run([&](context& ctx) {
        ctx.spawn([](context& child) { (void)tree_sum(child, 6); });
        ctx.spawn([](context&) { throw std::runtime_error("boom"); });
        ctx.sync();
      });
      FAIL() << "exception did not propagate";
    } catch (const std::runtime_error&) {
    }
  }
  EXPECT_TRUE(wait_balanced());
}

}  // namespace
