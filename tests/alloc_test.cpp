// cilkpp_slab certification (DESIGN.md §4.11): size-class geometry, the
// magazine automaton's batching and retention invariants, cross-thread block
// migration, leak balance under the schedule-fuzz chaos sweep, and the
// memlens layout certificate — slab-served blocks can never false-share a
// cache line, checked on both SP engines.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "alloc/slab.hpp"
#include "cilkscreen/screen_context.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/task_pool.hpp"
#if CILKPP_STRESS_ENABLED
#include "stress/chaos.hpp"
#endif
#if CILKPP_MEMLENS_ENABLED
#include "memlens/analyzer.hpp"
#include "memlens/report.hpp"
#endif

namespace cilkpp {
namespace {

// --- Size-class geometry ---------------------------------------------------

TEST(SlabGeometry, SizeClassMap) {
  EXPECT_EQ(alloc::size_class(0), 0u);
  EXPECT_EQ(alloc::size_class(1), 0u);
  EXPECT_EQ(alloc::size_class(64), 0u);
  EXPECT_EQ(alloc::size_class(65), 1u);
  EXPECT_EQ(alloc::size_class(128), 1u);
  EXPECT_EQ(alloc::size_class(129), 2u);
  EXPECT_EQ(alloc::size_class(4096), alloc::num_classes - 1);
  EXPECT_GE(alloc::size_class(4097), alloc::num_classes);  // oversize
  // Every class size serves exactly the sizes that map to it.
  for (std::size_t c = 0; c < alloc::num_classes; ++c) {
    EXPECT_EQ(alloc::size_class(alloc::class_sizes[c]), c);
    EXPECT_EQ(alloc::size_class(alloc::class_sizes[c] / 2 + 1), c);
  }
}

TEST(SlabGeometry, ClassSizesAreCacheLineMultiples) {
  for (std::size_t c = 0; c < alloc::num_classes; ++c) {
    EXPECT_EQ(alloc::class_sizes[c] % alloc::block_align, 0u)
        << "class " << c;
  }
  // The pool's classes must all be slab-servable (no silent oversize).
  EXPECT_LE(sizeof(void*) * 8, alloc::class_sizes[alloc::num_classes - 1]);
}

TEST(SlabGeometry, BlocksAreLineAlignedAndDisjoint) {
  constexpr int n = 64;
  for (std::size_t c = 0; c < alloc::num_classes; ++c) {
    const std::size_t sz = alloc::class_sizes[c];
    std::vector<void*> blocks;
    for (int i = 0; i < n; ++i) blocks.push_back(alloc::slab_allocate(sz));
    std::vector<std::uintptr_t> addrs;
    for (void* p : blocks) {
      const auto a = reinterpret_cast<std::uintptr_t>(p);
      EXPECT_EQ(a % alloc::block_align, 0u);
      addrs.push_back(a);
    }
    // Pairwise disjoint at block granularity: no two live blocks overlap,
    // and since sizes are line multiples and starts line-aligned, no two
    // live blocks share a cache line either.
    std::sort(addrs.begin(), addrs.end());
    for (std::size_t i = 1; i < addrs.size(); ++i) {
      EXPECT_GE(addrs[i] - addrs[i - 1], sz);
    }
    for (void* p : blocks) alloc::slab_deallocate(p, sz);
  }
}

// --- Magazine batching and retention ---------------------------------------

/// Refills are amortized: draining n blocks costs ~n/capacity depot trips.
TEST(SlabMagazines, RefillBatching) {
  constexpr std::size_t sz = 256;
  constexpr std::size_t n = alloc::magazine_capacity * 8;
  const alloc::slab_thread_counters* tc = alloc::slab_local_counters();
  const std::uint64_t refills0 =
      tc->magazine_refills.load(std::memory_order_relaxed);
  std::vector<void*> held;
  for (std::size_t i = 0; i < n; ++i) held.push_back(alloc::slab_allocate(sz));
  const std::uint64_t refills =
      tc->magazine_refills.load(std::memory_order_relaxed) - refills0;
  // n blocks cannot arrive in fewer than n/capacity magazines; the +2 slack
  // covers the partially-drained magazines at both ends of the window.
  EXPECT_GE(refills + 2, n / alloc::magazine_capacity);
  EXPECT_LE(refills, n / alloc::magazine_capacity + 2);
  for (void* p : held) alloc::slab_deallocate(p, sz);
}

/// The loaded/backup pair retains two magazines, so LIFO churn that
/// straddles a magazine boundary stays OUT of the depot at steady state
/// (the Bonwick invariant; without it every churn cycle costs two locks).
TEST(SlabMagazines, SteadyStateChurnNeverTouchesDepot) {
  constexpr std::size_t sz = 512;
  constexpr int depth = static_cast<int>(alloc::magazine_capacity) + 11;
  void* p[depth];
  // Warm: one churn cycle populates loaded+backup for this class.
  for (int i = 0; i < depth; ++i) p[i] = alloc::slab_allocate(sz);
  for (int i = depth - 1; i >= 0; --i) alloc::slab_deallocate(p[i], sz);
  const alloc::slab_thread_counters* tc = alloc::slab_local_counters();
  const std::uint64_t refills0 =
      tc->magazine_refills.load(std::memory_order_relaxed);
  const std::uint64_t returns0 =
      tc->magazine_returns.load(std::memory_order_relaxed);
  for (int cycle = 0; cycle < 1000; ++cycle) {
    for (int i = 0; i < depth; ++i) p[i] = alloc::slab_allocate(sz);
    for (int i = depth - 1; i >= 0; --i) alloc::slab_deallocate(p[i], sz);
  }
  EXPECT_EQ(tc->magazine_refills.load(std::memory_order_relaxed), refills0);
  EXPECT_EQ(tc->magazine_returns.load(std::memory_order_relaxed), returns0);
}

/// Freeing far more than the cache can hold returns whole magazines.
TEST(SlabMagazines, ReturnBatching) {
  constexpr std::size_t sz = 128;
  constexpr std::size_t n = alloc::magazine_capacity * 8;
  std::vector<void*> held;
  for (std::size_t i = 0; i < n; ++i) held.push_back(alloc::slab_allocate(sz));
  const alloc::slab_thread_counters* tc = alloc::slab_local_counters();
  const std::uint64_t returns0 =
      tc->magazine_returns.load(std::memory_order_relaxed);
  for (void* p : held) alloc::slab_deallocate(p, sz);
  const std::uint64_t returns =
      tc->magazine_returns.load(std::memory_order_relaxed) - returns0;
  // 8 magazines' worth freed; two stay cached (loaded + backup).
  EXPECT_GE(returns + 3, n / alloc::magazine_capacity);
  EXPECT_LE(returns, n / alloc::magazine_capacity);
}

// --- Cross-thread migration ------------------------------------------------

/// A block allocated here and freed on another thread (a stolen task frame's
/// lifecycle) migrates through the depot and stays balanced; the memory is
/// then re-servable on this thread.
TEST(SlabMigration, CrossThreadFreeBalances) {
  constexpr std::size_t sz = 256;
  constexpr std::size_t n = alloc::magazine_capacity * 4;
  const auto before = alloc::slab_totals();
  std::vector<void*> blocks;
  for (std::size_t i = 0; i < n; ++i) {
    blocks.push_back(alloc::slab_allocate(sz));
  }
  std::thread other([&] {
    for (void* p : blocks) alloc::slab_deallocate(p, sz);
  });
  other.join();
  const auto after = alloc::slab_totals();
  EXPECT_EQ(after.total_allocs() - before.total_allocs(), n);
  EXPECT_EQ(after.total_frees() - before.total_frees(), n);
  EXPECT_TRUE(after.balanced());
  // The migrated blocks are depot inventory again: a fresh burst on this
  // thread must not carve new slabs for this class.
  const std::uint64_t slabs0 = after.slabs_live;
  for (std::size_t i = 0; i < n; ++i) {
    blocks[i] = alloc::slab_allocate(sz);
  }
  for (void* p : blocks) alloc::slab_deallocate(p, sz);
  EXPECT_EQ(alloc::slab_totals().slabs_live, slabs0);
}

// --- Leak balance under chaos ----------------------------------------------

#if CILKPP_STRESS_ENABLED
/// Every task frame, slot-arena chunk and reducer view allocated by a
/// chaos-perturbed parallel run is freed by the time the scheduler is torn
/// down, for every seed — the slab-level leak oracle of the stress suite.
TEST(SlabChaos, EightSeedSweepStaysBalanced) {
  constexpr std::uint64_t n = 1200;
  const std::uint64_t expected = n * (n - 1) / 2;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    std::atomic<std::uint64_t> sum{0};
    {
      // Declared before the scheduler: the policy must outlive it.
      stress::seeded_chaos chaos(seed, 4);
      rt::scheduler sched(4);
      sched.install_chaos(&chaos);
      sched.run([&](rt::context& ctx) {
        rt::parallel_for(
            ctx, std::uint64_t{0}, n,
            [&](std::uint64_t i) {
              sum.fetch_add(i, std::memory_order_relaxed);
            },
            /*grain=*/1);
      });
      sched.remove_chaos();
    }
    EXPECT_EQ(sum.load(), expected) << "chaos seed " << seed;
    EXPECT_TRUE(alloc::slab_totals().balanced()) << "chaos seed " << seed;
  }
}
#endif  // CILKPP_STRESS_ENABLED

// --- Memlens layout certificate --------------------------------------------

#if CILKPP_MEMLENS_ENABLED

template <typename D>
class SlabMemlens : public ::testing::Test {
 protected:
  using Ctx = screen::basic_screen_context<D>;
};
using Engines = ::testing::Types<screen::detector, screen::order_detector>;
TYPED_TEST_SUITE(SlabMemlens, Engines);

/// The false-sharing-freedom claim, measured rather than asserted: register
/// live slab blocks of every class as runtime-owned regions (zero `padding`
/// records — no two blocks share a line) and write two of them from
/// logically parallel strands (zero `false_sharing` records).
TYPED_TEST(SlabMemlens, SlabServedBlocksAreFalseSharingFree) {
  using Ctx = typename TestFixture::Ctx;
  TypeParam d;
  typename TypeParam::memlens_analyzer ml;
  d.attach_memlens(&ml);

  std::vector<std::pair<void*, std::size_t>> blocks;
  for (std::size_t c = 0; c < alloc::num_classes; ++c) {
    for (int i = 0; i < 16; ++i) {
      blocks.emplace_back(alloc::slab_allocate(alloc::class_sizes[c]),
                          alloc::class_sizes[c]);
    }
  }
  screen::run_under_detector(d, [&](Ctx& ctx) {
    for (auto [p, sz] : blocks) ctx.note_lens_region(p, sz, "slab block");
    // Two sibling strands hammer different blocks of the smallest class —
    // the pattern that false-shares when an allocator packs two 64-byte
    // objects into one line.
    auto* a = static_cast<std::uint64_t*>(blocks[0].first);
    auto* b = static_cast<std::uint64_t*>(blocks[1].first);
    ctx.spawn([&](Ctx& c) {
      c.note_write(a, sizeof(*a), "worker A frame");
      *a = 1;
    });
    ctx.spawn([&](Ctx& c) {
      c.note_write(b, sizeof(*b), "worker B frame");
      *b = 2;
    });
    ctx.sync();
  });
  ml.finish();
  EXPECT_FALSE(d.found_races());
  EXPECT_TRUE(ml.clean())
      << memlens::render_lenses(ml.records(), d.procedures());
  for (auto [p, sz] : blocks) alloc::slab_deallocate(p, sz);
}

#endif  // CILKPP_MEMLENS_ENABLED

// --- task_pool stat plumbing (satellite surface) ---------------------------

TEST(TaskPoolOversize, OversizeAllocsAreCounted) {
  const auto before = rt::task_pool_totals();
  constexpr std::size_t big = 8192;  // above the largest task class
  void* p = rt::task_allocate(big);
  rt::task_deallocate(p, big);
  const auto after = rt::task_pool_totals();
  EXPECT_EQ(after.oversize_allocs() - before.oversize_allocs(), 1u);
  EXPECT_EQ(after.oversize_frees() - before.oversize_frees(), 1u);
}

}  // namespace
}  // namespace cilkpp
