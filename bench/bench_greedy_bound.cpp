// E5 (Sec. 3.1): the work-stealing performance bound TP ≤ T1/P + O(T∞).
//
// For each dag and P the table reports the measured constant
// c = (TP − T1/P) / T∞: the bound holds iff c stays a small constant
// (it scales with the steal latency), and when parallelism ≫ P the running
// time is dominated by T1/P — near-perfect linear speedup, the paper's
// headline guarantee.
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "dag/analysis.hpp"
#include "dag/generators.hpp"
#include "dag/recorder.hpp"
#include "sim/machine.hpp"
#include "support/table.hpp"
#include "workloads/qsort.hpp"

int main() {
  using namespace cilkpp;
  std::cout << "=== E5: TP <= T1/P + O(Tinf) ===\n\n";
  constexpr std::uint64_t latency = 10;

  std::vector<std::pair<std::string, dag::graph>> shapes;
  shapes.emplace_back("fib(20) cutoff 5", dag::fib_dag(20, 5, 25));
  shapes.emplace_back("cilk_for 16384 iters", dag::loop_dag(16384, 8, 30));
  {
    auto data = workloads::random_doubles(1 << 18, 5);
    shapes.emplace_back("qsort 2^18", dag::record([&](dag::recorder_context& c) {
                          workloads::qsort(c, data.data(),
                                           data.data() + data.size(), 512);
                        }));
  }

  double worst_c = 0.0;
  for (const auto& [name, g] : shapes) {
    const dag::metrics m = dag::analyze(g);
    table t{"P", "T_P", "T1/P", "T_P - T1/P", "c = gap/Tinf", "speedup",
            "P/parallelism"};
    for (const unsigned procs : {2u, 4u, 8u, 16u, 32u, 64u}) {
      sim::machine_config cfg;
      cfg.processors = procs;
      cfg.steal_latency = latency;
      cfg.seed = 77;
      const sim::sim_result r = sim::simulate(g, cfg);
      const double ideal = static_cast<double>(m.work) / procs;
      const double gap = static_cast<double>(r.makespan) - ideal;
      const double c = gap / static_cast<double>(m.span);
      worst_c = std::max(worst_c, c);
      t.row(procs, r.makespan, ideal, gap, c, r.speedup(m.work),
            procs / m.parallelism());
    }
    t.set_title(name + "  (T1=" + table::format_cell(m.work) +
                ", Tinf=" + table::format_cell(m.span) +
                ", parallelism=" + table::format_cell(m.parallelism()) + ")");
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Worst constant c observed: " << worst_c << "  (steal latency "
            << latency << "; the bound's O(Tinf) hides c ~ a few latencies)\n";
  return 0;
}
