// E11 (Sec. 4): the Cilkscreen race detector.
//
// Detection table: the paper's positive and negative examples —
//   * Fig. 5's naive tree walk (global list, no lock): race reported;
//   * Fig. 6's mutex walk: quiet (common lock suppresses);
//   * Fig. 1's quicksort: quiet;
//   * Sec. 4's mutated quicksort (line 13 `middle-1`, overlapping
//     subproblems): race reported, deterministically, in ONE serial run —
//     the guarantee that an exposed race is always caught, while actual
//     parallel executions "may execute successfully millions of times".
// Overhead table: instrumented vs uninstrumented serial execution.
#include <algorithm>
#include <iostream>
#include <list>
#include <vector>

#include "cilkscreen/screen_context.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"
#include "workloads/treewalk.hpp"

namespace {

using namespace cilkpp;
using namespace cilkpp::screen;

// Instrumented quicksort over cell<int>, with the Sec. 4 mutation toggle.
void sqsort(screen_context& ctx, std::vector<cell<int>>& a, int lo, int hi,
            bool buggy) {
  if (hi - lo < 2) return;
  const int pivot = a[static_cast<std::size_t>(lo)].get(ctx);
  int mid = lo;
  for (int i = lo + 1; i < hi; ++i) {
    if (a[static_cast<std::size_t>(i)].get(ctx) < pivot) {
      ++mid;
      const int t = a[static_cast<std::size_t>(i)].get(ctx);
      a[static_cast<std::size_t>(i)].set(ctx, a[static_cast<std::size_t>(mid)].get(ctx));
      a[static_cast<std::size_t>(mid)].set(ctx, t);
    }
  }
  const int t = a[static_cast<std::size_t>(lo)].get(ctx);
  a[static_cast<std::size_t>(lo)].set(ctx, a[static_cast<std::size_t>(mid)].get(ctx));
  a[static_cast<std::size_t>(mid)].set(ctx, t);
  const int right = buggy ? std::max(lo + 1, mid - 1) : mid + 1;
  ctx.spawn([&, lo, mid, buggy](screen_context& c) { sqsort(c, a, lo, mid, buggy); });
  sqsort(ctx, a, right, hi, buggy);
  ctx.sync();
}

// The same quicksort driven through the SP-order engine.
void sqsort2(order_context& ctx, std::vector<cell<int>>& a, int lo, int hi,
             bool buggy) {
  if (hi - lo < 2) return;
  const int pivot = a[static_cast<std::size_t>(lo)].get(ctx);
  int mid = lo;
  for (int i = lo + 1; i < hi; ++i) {
    if (a[static_cast<std::size_t>(i)].get(ctx) < pivot) {
      ++mid;
      const int t = a[static_cast<std::size_t>(i)].get(ctx);
      a[static_cast<std::size_t>(i)].set(ctx, a[static_cast<std::size_t>(mid)].get(ctx));
      a[static_cast<std::size_t>(mid)].set(ctx, t);
    }
  }
  const int t = a[static_cast<std::size_t>(lo)].get(ctx);
  a[static_cast<std::size_t>(lo)].set(ctx, a[static_cast<std::size_t>(mid)].get(ctx));
  a[static_cast<std::size_t>(mid)].set(ctx, t);
  const int right = buggy ? std::max(lo + 1, mid - 1) : mid + 1;
  ctx.spawn([&, lo, mid, buggy](order_context& c) { sqsort2(c, a, lo, mid, buggy); });
  sqsort2(ctx, a, right, hi, buggy);
  ctx.sync();
}

// Instrumented Fig. 5/6/7 walks over an instrumented output-list length.
void swalk(screen_context& ctx, const workloads::assembly_node* x,
           const workloads::collision_model& model, cell<int>& list_len,
           screen_mutex* mutex) {
  if (x == nullptr) return;
  if (workloads::collides(model, x->id)) {
    if (mutex != nullptr) mutex->lock(ctx);
    list_len.update(ctx, [](int& v) { ++v; });
    if (mutex != nullptr) mutex->unlock(ctx);
  }
  ctx.spawn([&, left = x->left.get()](screen_context& c) {
    swalk(c, left, model, list_len, mutex);
  });
  swalk(ctx, x->right.get(), model, list_len, mutex);
  ctx.sync();
}

}  // namespace

int main() {
  std::cout << "=== E11: Cilkscreen race detection ===\n\n";
  const workloads::collision_model model{.cost = 5, .threshold = 256};
  const workloads::assembly asmbl = workloads::build_assembly(11, model, 3);

  table t{"program", "paper expectation", "races", "reads", "writes",
          "lock-suppressed"};

  {
    detector d;
    cell<int> len(0, "output_list");
    run_under_detector(d, [&](screen_context& ctx) {
      swalk(ctx, asmbl.root.get(), model, len, nullptr);
    });
    t.row("Fig. 5 naive walk", "race on output_list", d.stats().races_found,
          d.stats().reads_checked, d.stats().writes_checked,
          d.stats().races_lock_suppressed);
  }
  {
    detector d;
    cell<int> len(0, "output_list");
    screen_mutex L(d);
    run_under_detector(d, [&](screen_context& ctx) {
      swalk(ctx, asmbl.root.get(), model, len, &L);
    });
    t.row("Fig. 6 mutex walk", "quiet", d.stats().races_found,
          d.stats().reads_checked, d.stats().writes_checked,
          d.stats().races_lock_suppressed);
  }
  for (const bool buggy : {false, true}) {
    detector d;
    xoshiro256 rng(41);
    std::vector<cell<int>> a;
    for (int i = 0; i < 2000; ++i) a.emplace_back(static_cast<int>(rng.below(100000)));
    run_under_detector(d, [&](screen_context& ctx) {
      sqsort(ctx, a, 0, static_cast<int>(a.size()), buggy);
    });
    t.row(buggy ? "Sec. 4 mutated qsort (middle-1)" : "Fig. 1 qsort",
          buggy ? "race (overlap)" : "quiet", d.stats().races_found,
          d.stats().reads_checked, d.stats().writes_checked,
          d.stats().races_lock_suppressed);
  }
  t.print(std::cout);

  // Determinism: the exposed race is caught in EVERY single serial run.
  int caught = 0;
  for (int run = 0; run < 10; ++run) {
    detector d;
    xoshiro256 rng(100 + static_cast<std::uint64_t>(run));
    std::vector<cell<int>> a;
    for (int i = 0; i < 500; ++i) a.emplace_back(static_cast<int>(rng.below(100000)));
    run_under_detector(d, [&](screen_context& ctx) {
      sqsort(ctx, a, 0, static_cast<int>(a.size()), true);
    });
    caught += d.found_races() ? 1 : 0;
  }
  std::cout << "\nMutated qsort over 10 random inputs: race caught in " << caught
            << "/10 single serial runs (paper: guaranteed when exposed).\n\n";

  // Overhead of the detector vs the bare elision.
  {
    std::vector<int> raw(50000);
    xoshiro256 rng(5);
    for (int& v : raw) v = static_cast<int>(rng.below(1 << 20));

    stopwatch sw;
    auto copy = raw;
    std::sort(copy.begin(), copy.end());
    const double plain_s = sw.elapsed_s();

    detector d;
    std::vector<cell<int>> a;
    a.reserve(raw.size());
    for (int v : raw) a.emplace_back(v);
    sw.reset();
    run_under_detector(d, [&](screen_context& ctx) {
      sqsort(ctx, a, 0, static_cast<int>(a.size()), false);
    });
    const double screened_s = sw.elapsed_s();

    // Second engine: SP-order (order-maintenance lists, paper ref [2]).
    order_detector od;
    std::vector<cell<int>> a2;
    a2.reserve(raw.size());
    for (int v : raw) a2.emplace_back(v);
    sw.reset();
    run_under_detector(od, [&](order_context& ctx) {
      sqsort2(ctx, a2, 0, static_cast<int>(a2.size()), false);
    });
    const double order_s = sw.elapsed_s();

    const auto checked_bags =
        d.stats().reads_checked + d.stats().writes_checked;
    const auto checked_order =
        od.stats().reads_checked + od.stats().writes_checked;
    table o{"configuration", "time (s)", "slowdown", "accesses checked",
            "accesses/s"};
    o.row("std::sort, uninstrumented", plain_s, 1.0, std::uint64_t{0}, 0.0);
    o.row("qsort under SP-bags engine", screened_s, screened_s / plain_s,
          checked_bags, static_cast<double>(checked_bags) / screened_s);
    o.row("qsort under SP-order engine", order_s, order_s / plain_s,
          checked_order, static_cast<double>(checked_order) / order_s);
    o.set_title("detector overhead, n = 50000 (binary-instrumentation tools "
                "pay a comparable constant)");
    o.print(std::cout);
    std::cout << "SP-order engine: " << od.relabel_count()
              << " order-maintenance relabels; both engines report "
                 "identically (see tests/sporder_test.cpp).\n\n";
  }

  // ALL-SETS history depth: how many (lockset, kind) entries do shadow
  // cells actually hold?  Lock-free code stays at 1–2 entries per cell
  // (last reader + last writer, as in classic SP-bags); each distinct
  // lockset a location is touched under can add one more, bounded by
  // history_capacity with a counted spill.
  {
    constexpr unsigned nlocks = 3;
    constexpr int strands = 64;
    detector d;
    order_detector od;
    const auto run_mix = [&](auto& det, auto tag) {
      using ctx_t = basic_screen_context<std::decay_t<decltype(det)>>;
      (void)tag;
      std::vector<cell<int>> vars(32);
      std::vector<basic_screen_mutex<std::decay_t<decltype(det)>>> locks;
      for (unsigned b = 0; b < nlocks; ++b) locks.emplace_back(det);
      xoshiro256 rng(17);
      run_under_detector(det, [&](ctx_t& ctx) {
        for (int s = 0; s < strands; ++s) {
          const auto v = rng.below(vars.size());
          const auto mask = static_cast<unsigned>(rng.below(1u << nlocks));
          ctx.spawn([&, v, mask](ctx_t& c) {
            for (unsigned b = 0; b < nlocks; ++b)
              if (mask & (1u << b)) locks[b].lock(c);
            vars[v].update(c, [](int& x) { ++x; });
            for (unsigned b = nlocks; b-- > 0;)
              if (mask & (1u << b)) locks[b].unlock(c);
          });
        }
        ctx.sync();
      });
    };
    run_mix(d, 0);
    run_mix(od, 0);

    const auto bags_hist = d.history_histogram();
    const auto order_hist = od.history_histogram();
    const std::size_t depth = std::max(bags_hist.size(), order_hist.size());
    table h{"entries per cell", "SP-bags cells", "SP-order cells"};
    for (std::size_t n = 1; n < depth; ++n) {
      h.row(static_cast<std::uint64_t>(n),
            n < bags_hist.size() ? bags_hist[n] : 0,
            n < order_hist.size() ? order_hist[n] : 0);
    }
    h.set_title("history entries per shadow cell (64 strands, random "
                "locksets over 3 locks)");
    h.print(std::cout);
    std::cout << "history spills: SP-bags " << d.stats().history_spills
              << ", SP-order " << od.stats().history_spills
              << " (capacity " << history_capacity
              << " entries; 3 locks needs at most 16).\n";
  }
  return 0;
}
