// Tracing-overhead budget: cilk::trace must be cheap enough to leave on.
//
// google-benchmark pairs on the real scheduler: fib with no session
// attached (record points compiled in but the per-worker ring pointer is
// null — one acquire load + branch per event site), the same fib with a
// live session recording every spawn/steal/sync/frame event, and the raw
// ring try_push throughput that bounds what any record point can cost.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "runtime/scheduler.hpp"
#include "trace/ring.hpp"
#include "trace/session.hpp"
#include "workloads/fib.hpp"

namespace {

using cilkpp::rt::context;
using cilkpp::rt::scheduler;

constexpr unsigned kFibN = 27;
constexpr unsigned kFibCutoff = 12;  // small grain → many events per second

void BM_fib_untraced(benchmark::State& state) {
  const auto workers = static_cast<unsigned>(state.range(0));
  scheduler sched(workers);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.run(
        [](context& ctx) { return cilkpp::workloads::fib(ctx, kFibN, kFibCutoff); }));
  }
}
BENCHMARK(BM_fib_untraced)->Arg(1)->Arg(4);

void BM_fib_traced(benchmark::State& state) {
  const auto workers = static_cast<unsigned>(state.range(0));
  scheduler sched(workers);
  std::uint64_t events = 0, drops = 0;
  for (auto _ : state) {
    // A fresh session per run, like a real capture; ring large enough that
    // nothing drops, so we pay the full record cost for every event.
    cilkpp::trace::session cap(sched, {std::size_t{1} << 14});
    benchmark::DoNotOptimize(sched.run(
        [](context& ctx) { return cilkpp::workloads::fib(ctx, kFibN, kFibCutoff); }));
    cap.stop();
    events += cap.recorded();
    drops += cap.dropped();
  }
  state.counters["events_per_run"] =
      benchmark::Counter(static_cast<double>(events) /
                         static_cast<double>(state.iterations()));
  state.counters["drops"] = benchmark::Counter(static_cast<double>(drops));
}
BENCHMARK(BM_fib_traced)->Arg(1)->Arg(4);

// Raw single-producer push throughput: the ceiling on record-point cost.
void BM_ring_try_push(benchmark::State& state) {
  cilkpp::trace::event_ring ring(std::size_t{1} << 16);
  std::vector<cilkpp::trace::event> sink;
  cilkpp::trace::event ev{};
  ev.kind = cilkpp::trace::event_kind::spawn;
  std::size_t pushed = 0;
  for (auto _ : state) {
    ev.time_ns = ++pushed;
    if (!ring.try_push(ev)) {
      ring.pop_all(sink);  // drain outside the measured common path
      sink.clear();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ring_try_push);

}  // namespace

BENCHMARK_MAIN();
