// E17 companion: the locality/allocator half of the scheduler story
// (DESIGN.md §4.11). Publishes BENCH_alloc.json for CI's perf-smoke job:
//
//   * steal-distance mix   per-bucket log2 histogram of |victim - thief|
//                          distance over a steal-heavy run at P = 4 — the
//                          near-first probe order should concentrate steals
//                          in the low buckets
//   * refill rate          fraction of slab blocks that crossed the depot
//                          (magazine_refills x capacity / blocks served):
//                          batching means this is a small fraction, i.e.
//                          most allocations are a thread-local freelist pop
//   * contention speedup   wide parallel_for (grain 1) throughput at
//                          P = 2 over P = 1 — the leg the slab layer and
//                          the burst lowering were built for
//
// Thresholds are catastrophic-only (shared CI runners): steals must happen
// at all, the refill rate must show batching, and P = 2 must not collapse.
#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "alloc/slab.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/stats_json.hpp"
#include "support/stats.hpp"
#include "support/timing.hpp"
#include "workloads/fib.hpp"

namespace {

using cilkpp::rt::context;
using cilkpp::rt::scheduler;
using cilkpp::rt::worker_stats;

/// A steal-heavy mixed workload: recursive fib keeps deques deep, the wide
/// loop keeps the join path hot. Returns the merged stats of the run.
worker_stats run_steal_mix(unsigned workers) {
  scheduler sched(workers);
  std::atomic<std::uint64_t> sink{0};
  sched.run([&](context& ctx) {
    cilkpp::do_not_optimize(cilkpp::workloads::fib(ctx, 22, 4));
    cilkpp::rt::parallel_for(ctx, std::uint64_t{0}, std::uint64_t{1} << 15,
                             [&](std::uint64_t i) {
                               sink.fetch_add(i, std::memory_order_relaxed);
                             },
                             /*grain=*/1);
  });
  cilkpp::do_not_optimize(sink.load());
  return sched.stats();
}

/// Best-of-3 wide-pfor throughput (spawns/s) at the given worker count.
double wide_pfor_rate(unsigned workers) {
  constexpr std::uint64_t n = std::uint64_t{1} << 17;
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    scheduler sched(workers);
    std::atomic<std::uint64_t> sink{0};
    sched.reset_stats();
    cilkpp::stopwatch sw;
    sched.run([&](context& ctx) {
      cilkpp::rt::parallel_for(ctx, std::uint64_t{0}, n,
                               [&](std::uint64_t i) {
                                 sink.fetch_add(i, std::memory_order_relaxed);
                               },
                               /*grain=*/1);
    });
    const double rate =
        static_cast<double>(sched.stats().spawns) / sw.elapsed_s();
    if (rate > best) best = rate;
    cilkpp::do_not_optimize(sink.load());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_alloc.json";
  if (argc > 1) out_path = argv[1];

  // Warm the slab layer (and the depot's recycled-magazine stacks) before
  // anything is measured, mirroring real steady-state operation.
  (void)run_steal_mix(2);

  const auto slab_before = cilkpp::alloc::slab_totals();
  const worker_stats mix = run_steal_mix(4);
  const auto slab_after = cilkpp::alloc::slab_totals();

  std::uint64_t total_steals = 0;
  std::uint64_t near_steals = 0;  // buckets 0 and 1: distance <= 1
  for (std::size_t b = 0; b < cilkpp::rt::steal_distance_buckets; ++b) {
    total_steals += mix.steal_distance[b];
    if (b <= 1) near_steals += mix.steal_distance[b];
  }
  const double near_fraction =
      total_steals > 0
          ? static_cast<double>(near_steals) / static_cast<double>(total_steals)
          : 0;

  const std::uint64_t blocks_served =
      slab_after.total_allocs() - slab_before.total_allocs();
  const std::uint64_t refills =
      slab_after.magazine_refills - slab_before.magazine_refills;
  const double refill_rate =
      blocks_served > 0
          ? static_cast<double>(refills * cilkpp::alloc::magazine_capacity) /
                static_cast<double>(blocks_served)
          : 0;

  const double rate_p1 = wide_pfor_rate(1);
  const double rate_p2 = wide_pfor_rate(2);
  const double speedup = rate_p1 > 0 ? rate_p2 / rate_p1 : 0;

  // Catastrophic-only gates (see header comment).
  bool ok = true;
  if (total_steals == 0) {
    std::fprintf(stderr, "FAIL: no steals recorded in the P=4 mix run\n");
    ok = false;
  }
#if CILKPP_SLAB_ENABLED
  if (blocks_served > 0 && refill_rate > 0.5) {
    std::fprintf(stderr, "FAIL: refill rate %.3f > 0.5 (batching dead?)\n",
                 refill_rate);
    ok = false;
  }
#endif
  if (speedup < 0.2) {
    std::fprintf(stderr, "FAIL: P=2/P=1 contention speedup %.2f < 0.2\n",
                 speedup);
    ok = false;
  }

  cilkpp::json_writer w;
  w.begin_object();
  w.field("benchmark", "steal_locality");
  w.field("slab_enabled", CILKPP_SLAB_ENABLED != 0);
  w.key("steal_mix");
  w.begin_object();
  w.field("workers", 4);
  w.field("steals", total_steals);
  w.field("near_fraction", near_fraction);
  w.key("steal_distance");
  w.begin_array();
  for (std::uint64_t b : mix.steal_distance) w.value(b);
  w.end_array();
  w.field("backoff_naps", mix.backoff_naps);
  w.end_object();
  w.key("allocator");
  w.begin_object();
  w.field("blocks_served", blocks_served);
  w.field("magazine_refills", refills);
  w.field("refill_rate", refill_rate);
  w.field("magazine_returns",
          slab_after.magazine_returns - slab_before.magazine_returns);
  w.field("slabs_live", slab_after.slabs_live);
  w.field("system_allocs", slab_after.system_allocs);
  w.end_object();
  w.key("contention");
  w.begin_object();
  w.field("wide_pfor_p1_spawns_per_sec", rate_p1);
  w.field("wide_pfor_p2_spawns_per_sec", rate_p2);
  w.field("speedup_p2_over_p1", speedup);
  w.end_object();
  w.key("mix_worker_stats");
  cilkpp::rt::write_worker_stats(w, mix);
  w.key("thresholds");
  w.begin_object();
  w.field("refill_rate_max", 0.5);
  w.field("speedup_min", 0.2);
  w.field("passed", ok);
  w.end_object();
  w.end_object();

  const std::string doc = w.take();
  std::ofstream out(out_path);
  out << doc;
  out.close();
  std::printf("%s", doc.c_str());
  std::printf("wrote %s\n", out_path);
  return ok ? 0 : 1;
}
