// E14c (ablation): cilk_for grain size.
//
// Small grains maximize parallelism but pay a spawn per few iterations;
// large grains amortize spawns but starve the machine. The sweep shows the
// wide flat optimum that makes the default rule min(2048, N/(8P)) safe,
// measured two ways: simulated makespan (scheduling view) and recorded
// dag parallelism (analysis view).
#include <iostream>

#include "dag/analysis.hpp"
#include "dag/generators.hpp"
#include "runtime/parallel_for.hpp"
#include "sim/machine.hpp"
#include "support/table.hpp"

int main() {
  using namespace cilkpp;
  std::cout << "=== E14c: cilk_for grain-size ablation ===\n\n";

  constexpr std::uint64_t iterations = 1 << 16;
  constexpr std::uint64_t work_per_iter = 20;
  constexpr unsigned procs = 8;

  table t{"grain", "strands", "parallelism", "T_8 (sim)", "speedup",
          "spawn overhead %"};
  for (const std::uint64_t grain :
       {1ull, 4ull, 16ull, 64ull, 256ull, 1024ull, 2048ull, 8192ull, 65536ull}) {
    const dag::graph g = dag::loop_dag(iterations, grain, work_per_iter);
    const dag::metrics m = dag::analyze(g);
    sim::machine_config cfg;
    cfg.processors = procs;
    cfg.steal_latency = 10;
    cfg.seed = 29;
    const auto r = sim::simulate(g, cfg);
    const double pure_work = static_cast<double>(iterations * work_per_iter);
    t.row(grain, g.num_vertices(), m.parallelism(), r.makespan,
          pure_work / static_cast<double>(r.makespan),
          100.0 * (static_cast<double>(m.work) - pure_work) / pure_work);
  }
  const std::uint64_t auto_grain = rt::default_grain(iterations, procs);
  t.set_title("65536 iterations x 20 instr, P = 8; default rule picks grain " +
              table::format_cell(auto_grain));
  t.print(std::cout);

  std::cout << "\nReading: grains 16-2048 are within a few percent of each\n"
               "other — the default rule's regime; grain 1 pays the split\n"
               "spine, grain 65536 serializes the loop entirely.\n";
  return 0;
}
