// E4 (Fig. 3): the parallelism profile of the Fig. 1 quicksort.
//
// The paper runs quicksort on 100 million numbers and shows: the Work-Law
// line of slope 1, the Span-Law ceiling at parallelism ≈ 10.31 (since
// quicksort's expected parallelism is only O(lg n) — the first partition is
// a serial Θ(n) pass), a burdened lower-bound curve, and the measured
// speedup points between the curves.
//
// Here the program is recorded into its computation dag (n = 10^7 by
// default; the dag is strand-level so this is cheap), analyzed by the
// cilkview reproduction, and executed on the simulated machine for the
// measured series.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "cilkview/profile.hpp"
#include "dag/analysis.hpp"
#include "dag/recorder.hpp"
#include "sim/machine.hpp"
#include "support/table.hpp"
#include "workloads/qsort.hpp"

int main(int argc, char** argv) {
  using namespace cilkpp;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : std::size_t{10000000};
  std::cout << "=== E4 / Fig. 3: parallelism profile of quicksort, n = " << n
            << " ===\n\n";

  auto data = workloads::random_doubles(n, 2009);
  const dag::graph g = dag::record([&](dag::recorder_context& ctx) {
    workloads::qsort(ctx, data.data(), data.data() + data.size(),
                     /*cutoff=*/1024);
  });

  const cilkview::profile p = cilkview::analyze_dag(g, /*burden=*/2000);

  const std::vector<unsigned> procs{1, 2, 4, 8, 12, 16, 24, 32, 48, 64};
  std::vector<double> measured;
  measured.reserve(procs.size());
  for (const unsigned P : procs) {
    sim::machine_config cfg;
    cfg.processors = P;
    cfg.steal_latency = 50;  // the "burden" the lower curve anticipates
    cfg.seed = 31;
    measured.push_back(sim::simulate(g, cfg).speedup(p.work));
  }

  cilkview::print_report(std::cout, p, procs, measured);

  std::cout << "\nPaper (n = 10^8): span-law ceiling at 10.31; parallelism of "
               "sorting is only O(lg n).\n";
  std::cout << "Here (n = 10^" << (n >= 10000000 ? 7 : 6)
            << "): ceiling at " << p.parallelism()
            << " — same regime, scaled by lg n.\n";
  return 0;
}
