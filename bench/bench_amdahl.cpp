// E2 (Sec. 2): Amdahl's Law and how the dag model subsumes it.
//
// For each parallelizable fraction p, the table compares Amdahl's bound
// 1/((1-p) + p/P) against the measured speedup of simulating the matching
// Amdahl-shaped dag under randomized work stealing — the simulated speedup
// tracks the law and saturates at 1/(1-p), the paper's 50%/speedup-2
// example being the p = 0.5 row family.
#include <iostream>

#include "dag/analysis.hpp"
#include "dag/generators.hpp"
#include "sim/machine.hpp"
#include "support/table.hpp"

int main() {
  using namespace cilkpp;
  std::cout << "=== E2: Amdahl's Law vs the dag model ===\n\n";

  constexpr std::uint64_t total_work = 1 << 20;
  const unsigned procs_list[] = {1, 2, 4, 8, 16, 32, 64};

  for (const double p : {0.5, 0.9, 0.99}) {
    const auto serial_work = static_cast<std::uint64_t>(total_work * (1.0 - p));
    const auto parallel_work = total_work - serial_work;
    // Width ≫ P so the parallel phase is never starved.
    const dag::graph g = dag::amdahl_dag(serial_work, parallel_work, 4096);
    const dag::metrics m = dag::analyze(g);

    table t{"P", "amdahl bound", "dag-model cap", "simulated speedup"};
    for (const unsigned procs : procs_list) {
      sim::machine_config cfg;
      cfg.processors = procs;
      cfg.steal_latency = 4;
      cfg.seed = 7;
      const sim::sim_result r = sim::simulate(g, cfg);
      t.row(procs, dag::amdahl_speedup(p, procs),
            dag::speedup_upper_bound(m, procs), r.speedup(m.work));
    }
    t.set_title("parallel fraction p = " + table::format_cell(p) +
                "  (Amdahl limit 1/(1-p) = " +
                table::format_cell(dag::amdahl_limit(p)) +
                ", dag parallelism = " + table::format_cell(m.parallelism()) + ")");
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Paper's example: 50% parallelizable => speedup < 2 on any P.\n";
  return 0;
}
