// E12 (Sec. 5, Figs. 4–7): reducer hyperobject vs mutex on the
// collision-detection tree walk.
//
// Paper: "on one set of test inputs … lock contention actually degraded
// performance on 4 processors so that it was worse than running on a single
// processor", and the locking fix "jumbles up the order of list elements",
// while the reducer preserves the serial order with no lock at all.
//
// Part 1 — real runtime on this host: wall time of serial / mutex / reducer
// walks across worker counts, plus the lock's contention counters and the
// order check. (On a 1-core host extra workers only add contention — which
// is exactly the paper's degradation mechanism.)
//
// Part 2 — contention model over the recorded dag: a mutex serializes the
// critical sections, so TP(mutex) ≥ max(T1/P, hits·(section + transfer)) —
// with a realistic lock-transfer penalty the 4-processor mutex walk is
// predicted slower than 1 processor at high hit density, while the reducer
// walk follows the ordinary greedy bound (simulated).
#include <iostream>
#include <list>

#include "dag/analysis.hpp"
#include "dag/recorder.hpp"
#include "hyper/reducer.hpp"
#include "runtime/mutex.hpp"
#include "runtime/scheduler.hpp"
#include "sim/machine.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"
#include "workloads/treewalk.hpp"

int main() {
  using namespace cilkpp;
  std::cout << "=== E12: reducer vs mutex on the Sec. 5 tree walk ===\n\n";

  const workloads::collision_model model{.cost = 400, .threshold = 512};
  const workloads::assembly a = workloads::build_assembly(15, model, 9);
  std::cout << "assembly: " << a.node_count << " nodes, " << a.hit_count
            << " collisions (density " << model.threshold << "/1024)\n\n";

  // --- Part 1: real runtime. ---
  std::list<std::uint64_t> serial_out;
  stopwatch sw;
  workloads::walk_serial(a.root.get(), model, serial_out);
  const double serial_s = sw.elapsed_s();

  table t{"variant", "workers", "time (s)", "vs serial", "lock contended",
          "order = serial?"};
  t.row("serial (Fig. 4)", 1, serial_s, 1.0, std::uint64_t{0}, "yes");
  for (const unsigned workers : {1u, 2u, 4u, 8u}) {
    rt::scheduler sched(workers);
    {
      rt::mutex mu;
      std::list<std::uint64_t> out;
      sw.reset();
      sched.run([&](rt::context& ctx) {
        workloads::walk_mutex(ctx, a.root.get(), model, mu, out);
      });
      const double s = sw.elapsed_s();
      t.row("mutex (Fig. 6)", workers, s, s / serial_s,
            mu.contended_acquisitions(), out == serial_out ? "yes" : "NO");
    }
    {
      hyper::reducer<hyper::list_append<std::uint64_t>> out;
      sw.reset();
      sched.run([&](rt::context& ctx) {
        workloads::walk_reducer(ctx, a.root.get(), model, out);
      });
      const double s = sw.elapsed_s();
      t.row("reducer (Fig. 7)", workers, s, s / serial_s, std::uint64_t{0},
            out.value() == serial_out ? "yes" : "NO");
    }
  }
  t.set_title("real runtime on this host (1 physical core: >1 worker adds "
              "only contention)");
  t.print(std::cout);

  // --- Part 2: measured contention, sweeping the input's hit density. ---
  // The paper is careful to say the degradation happened "on one set of
  // test inputs": whether the lock hurts depends on how often the walk
  // takes it. Both variants are recorded into dags — the mutex version
  // with its critical sections annotated (dag::recording_mutex) — and
  // executed on the simulated machine, whose mutexes serialize annotated
  // strands and charge a cache-line transfer per cross-processor handoff.
  constexpr std::uint64_t section = 20;   // list update inside the lock
  constexpr std::uint64_t transfer = 200; // contended handoff cost
  constexpr std::uint64_t node_cost = 25; // light collision test: lock-bound

  table t2{"hits/1024", "P", "reducer speedup", "mutex speedup",
           "mutex vs 1 proc", "contended", "handoffs"};
  for (const std::uint64_t density : {64ull, 256ull, 1024ull}) {
    const workloads::collision_model mm{.cost = node_cost, .threshold = density};
    const workloads::assembly asm2 = workloads::build_assembly(15, mm, 9);

    hyper::reducer<hyper::list_append<std::uint64_t>> rec_out;
    const dag::graph g_red = dag::record([&](dag::recorder_context& ctx) {
      workloads::walk_reducer(ctx, asm2.root.get(), mm, rec_out);
    });
    const dag::graph g_mut = dag::record([&](dag::recorder_context& ctx) {
      std::list<std::uint64_t> out;
      dag::recording_mutex rec_mu(ctx, 0);
      // Charge the list update to the critical section.
      struct charging_mutex {
        dag::recording_mutex* inner;
        dag::recorder_context* ctx;
        void lock() { inner->lock(); }
        void unlock() {
          ctx->account(section);
          inner->unlock();
        }
      } mu{&rec_mu, &ctx};
      workloads::walk_mutex(ctx, asm2.root.get(), mm, mu, out);
    });

    const dag::metrics m_red = dag::analyze(g_red);
    const dag::metrics m_mut = dag::analyze(g_mut);

    double mutex_t1 = 0;
    for (const unsigned procs : {1u, 4u, 16u}) {
      sim::machine_config cfg;
      cfg.processors = procs;
      cfg.steal_latency = 10;
      cfg.seed = 17;
      cfg.lock_transfer_cost = transfer;
      const double reducer_speedup = sim::simulate(g_red, cfg).speedup(m_red.work);
      const sim::sim_result rm = sim::simulate(g_mut, cfg);
      if (procs == 1) mutex_t1 = static_cast<double>(rm.makespan);
      t2.row(density, procs, reducer_speedup,
             static_cast<double>(m_mut.work) / static_cast<double>(rm.makespan),
             mutex_t1 / static_cast<double>(rm.makespan), rm.lock_contentions,
             rm.lock_transfers);
    }
  }
  t2.set_title("measured on the simulated machine; node cost " +
               table::format_cell(node_cost) + " instr, section=" +
               table::format_cell(section) + ", transfer=" +
               table::format_cell(transfer));
  t2.print(std::cout);

  std::cout << "\nReading: at low density the lock is harmless; at the dense\n"
               "input the serialized, transfer-paying critical sections make\n"
               "the multiprocessor mutex walk SLOWER than 1 processor (the\n"
               "paper's anecdote), while the reducer walk scales like any\n"
               "sufficiently parallel computation at every density and keeps\n"
               "the exact serial output order.\n";
  return 0;
}
