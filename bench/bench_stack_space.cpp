// E7 (Sec. 3.1): space bounds.
//
// Claim 1 — "on P processors, a Cilk++ program consumes at most P times the
// stack space of a single-processor execution": the simulator tracks the
// machine-wide peak of live frames; the table reports peak / (P·S1), which
// must stay ≤ 1.
//
// Claim 2 — the spawn loop ("one billion invocations of foo"): work
// stealing keeps only O(P) strands materialized, while the naive central
// work-queue scheduler materializes the whole loop before executing the
// first iteration, "blowing out physical memory". We scale the loop to 10^6
// iterations; the residency ratio is what matters, and it already differs
// by four orders of magnitude.
#include <iostream>

#include "dag/analysis.hpp"
#include "dag/generators.hpp"
#include "sim/baselines.hpp"
#include "sim/machine.hpp"
#include "support/table.hpp"

int main() {
  using namespace cilkpp;
  std::cout << "=== E7: stack-space and memory bounds ===\n\n";

  {
    std::cout << "-- Claim 1: S_P <= P * S_1 (live frames, fib dag) --\n";
    const dag::graph g = dag::fib_dag(20, 4, 10);
    const std::uint64_t s1 = g.max_depth() + 1;
    table t{"P", "peak frames S_P", "P * S1", "ratio"};
    for (const unsigned procs : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      sim::machine_config cfg;
      cfg.processors = procs;
      cfg.steal_latency = 10;
      cfg.seed = 3;
      const sim::sim_result r = sim::simulate(g, cfg);
      t.row(procs, r.peak_stack_frames, procs * s1,
            static_cast<double>(r.peak_stack_frames) /
                static_cast<double>(procs * s1));
    }
    t.set_title("serial stack S1 = " + table::format_cell(s1) + " frames");
    t.print(std::cout);
    std::cout << '\n';
  }

  {
    std::cout << "-- Claim 2: the spawn loop (Sec. 3.1's code fragment) --\n";
    table t{"iterations", "work-steal peak tasks", "naive FIFO queue peak",
            "blowup factor"};
    for (const std::uint32_t n : {1000u, 10000u, 100000u, 1000000u}) {
      const dag::graph g = dag::spawn_loop_dag(n, 50);
      sim::machine_config ws;
      ws.processors = 4;
      ws.steal_latency = 10;
      ws.seed = 13;
      const auto r_ws = sim::simulate(g, ws);
      sim::baseline_config bc;
      bc.processors = 4;
      const auto r_q = sim::simulate_central_queue(g, bc, sim::queue_order::fifo);
      t.row(n, r_ws.peak_residency, r_q.peak_residency,
            static_cast<double>(r_q.peak_residency) /
                static_cast<double>(r_ws.peak_residency));
    }
    t.set_title("P = 4; paper's example used 10^9 iterations");
    t.print(std::cout);
  }

  std::cout << "\nWork stealing executes depth-first per worker, so the loop\n"
               "never materializes more than O(P) iterations at once.\n";
  return 0;
}
