// E-lint: what does cilk::lint cost on top of the SP engines?
//
// Three comparisons, all on lock-heavy but well-disciplined inputs (the
// clean fast path — diagnosis cost only matters when the program is
// already broken):
//   * the SP-bags detector driving a nested-locking spawn storm, with the
//     lint analyzer detached vs attached (the marginal cost of the
//     lock-order graph + boundary checks on an instrumented run);
//   * the same with the SP-order engine;
//   * raw rt::mutex traffic with no observer vs a mutex_census installed
//     (the production-side hook: one atomic load when uninstalled).
// Built with -DCILKPP_LINT=OFF the analyzer legs vanish — the row is
// printed as "compiled out" so the table shape is stable across configs.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "cilkscreen/screen_context.hpp"
#include "lint/analyzer.hpp"
#include "lint/mutex_census.hpp"
#include "runtime/mutex.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

namespace {

using namespace cilkpp;

constexpr unsigned kSpawns = 512;      // children per detector run
constexpr unsigned kReps = 64;         // lock pairs per child
constexpr unsigned kRounds = 3;        // best-of rounds per leg
constexpr std::uint64_t kMutexIters = 1u << 20;

/// One detector run: kSpawns spawned children, each taking two nested
/// locks kReps times in a globally consistent order (no reports — we are
/// timing the clean path). Returns elapsed ns.
template <typename D>
std::uint64_t screen_run(bool with_lint) {
  D d;
#if CILKPP_LINT_ENABLED
  typename D::lint_analyzer la;
  if (with_lint) d.attach_lint(&la);
#else
  (void)with_lint;
#endif
  screen::basic_screen_mutex<D> a(d), b(d);
  stopwatch sw;
  screen::run_under_detector(d, [&](screen::basic_screen_context<D>& ctx) {
    for (unsigned s = 0; s < kSpawns; ++s) {
      ctx.spawn([&](screen::basic_screen_context<D>& c) {
        for (unsigned r = 0; r < kReps; ++r) {
          a.lock(c);
          b.lock(c);
          b.unlock(c);
          a.unlock(c);
        }
      });
      if (s % 16 == 15) ctx.sync();  // keep the P-bags from growing unbounded
    }
    ctx.sync();
  });
  const std::uint64_t ns = sw.elapsed_ns();
#if CILKPP_LINT_ENABLED
  if (with_lint) {
    la.finish();
    if (!la.clean()) {
      std::cerr << "bench_lint_overhead: unexpected lint reports\n";
      std::exit(1);
    }
  }
#endif
  return ns;
}

std::uint64_t mutex_run(bool with_census) {
  rt::mutex m;
  std::uint64_t sum = 0;
  const auto loop = [&] {
    stopwatch sw;
    for (std::uint64_t i = 0; i < kMutexIters; ++i) {
      m.lock();
      sum += i;
      m.unlock();
    }
    do_not_optimize(sum);
    return sw.elapsed_ns();
  };
#if CILKPP_LINT_ENABLED
  if (with_census) {
    lint::scoped_mutex_census census;
    const std::uint64_t ns = loop();
    if (!census.census().balanced()) {
      std::cerr << "bench_lint_overhead: census imbalance\n";
      std::exit(1);
    }
    return ns;
  }
#else
  (void)with_census;
#endif
  return loop();
}

template <typename Run>
std::uint64_t best_of(const Run& run) {
  std::uint64_t best = ~std::uint64_t{0};
  for (unsigned i = 0; i < kRounds; ++i) {
    const std::uint64_t ns = run();
    if (ns < best) best = ns;
  }
  return best;
}

std::string per_acquire(std::uint64_t ns, std::uint64_t acquires) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f",
                static_cast<double>(ns) / static_cast<double>(acquires));
  return buf;
}

}  // namespace

int main() {
  const std::uint64_t screen_acquires =
      std::uint64_t{kSpawns} * kReps * 2;

  table t({"leg", "acquires", "ns/acquire"});

  const auto screen_row = [&](const char* name, auto tag, bool with_lint) {
    using D = typename decltype(tag)::type;
#if !CILKPP_LINT_ENABLED
    if (with_lint) {
      t.add_row({name, "-", "compiled out"});
      return;
    }
#endif
    const std::uint64_t ns =
        best_of([&] { return screen_run<D>(with_lint); });
    t.add_row({name, std::to_string(screen_acquires),
               per_acquire(ns, screen_acquires)});
  };
  struct bags_tag { using type = cilkpp::screen::detector; };
  struct order_tag { using type = cilkpp::screen::order_detector; };
  screen_row("sp-bags, lint detached", bags_tag{}, false);
  screen_row("sp-bags, lint attached", bags_tag{}, true);
  screen_row("sp-order, lint detached", order_tag{}, false);
  screen_row("sp-order, lint attached", order_tag{}, true);

  const std::uint64_t bare = best_of([] { return mutex_run(false); });
  t.add_row({"rt::mutex, no observer", std::to_string(kMutexIters),
             per_acquire(bare, kMutexIters)});
#if CILKPP_LINT_ENABLED
  const std::uint64_t censused = best_of([] { return mutex_run(true); });
  t.add_row({"rt::mutex, census installed", std::to_string(kMutexIters),
             per_acquire(censused, kMutexIters)});
#else
  t.add_row({"rt::mutex, census installed", "-", "compiled out"});
#endif

  std::cout << "# E-lint: lock-discipline analyzer overhead\n";
  t.print(std::cout);
  return 0;
}
