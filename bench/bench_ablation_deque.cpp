// E14a (ablation, DESIGN.md §4.2): Chase–Lev lock-free deque vs a
// mutex-protected deque.
//
// The owner-side path (push_bottom/pop_bottom) is the one Sec. 3.2 says
// must cost nearly nothing — "in the common case, Cilk++ operates just like
// C++ and imposes little overhead" — because every spawn and return crosses
// it. The steal path may be slow; it is executed only by hungry thieves.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "deque/abp_deque.hpp"
#include "deque/chase_lev.hpp"
#include "deque/locked_deque.hpp"

namespace {

using cilkpp::abp_deque;
using cilkpp::chase_lev_deque;
using cilkpp::locked_deque;
using cilkpp::steal_result;

template <typename D>
void BM_owner_push_pop(benchmark::State& state) {
  D d;
  std::uint64_t item = 42;
  for (auto _ : state) {
    d.push_bottom(&item);
    benchmark::DoNotOptimize(d.pop_bottom());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_owner_push_pop<chase_lev_deque<std::uint64_t*>>);
BENCHMARK(BM_owner_push_pop<abp_deque<std::uint64_t*>>);
BENCHMARK(BM_owner_push_pop<locked_deque<std::uint64_t*>>);

template <typename D>
void BM_owner_push_pop_under_thief(benchmark::State& state) {
  D d;
  std::uint64_t item = 42;
  std::atomic<bool> stop{false};
  std::thread thief([&] {
    std::uint64_t* out = nullptr;
    while (!stop.load(std::memory_order_acquire)) {
      benchmark::DoNotOptimize(d.steal(out));
    }
  });
  for (auto _ : state) {
    d.push_bottom(&item);
    benchmark::DoNotOptimize(d.pop_bottom());
  }
  stop.store(true, std::memory_order_release);
  thief.join();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_owner_push_pop_under_thief<chase_lev_deque<std::uint64_t*>>);
BENCHMARK(BM_owner_push_pop_under_thief<abp_deque<std::uint64_t*>>);
BENCHMARK(BM_owner_push_pop_under_thief<locked_deque<std::uint64_t*>>);

template <typename D>
void BM_steal_throughput(benchmark::State& state) {
  D d;
  std::uint64_t item = 42;
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 1024; ++i) d.push_bottom(&item);
    state.ResumeTiming();
    std::uint64_t* out = nullptr;
    for (int i = 0; i < 1024; ++i) benchmark::DoNotOptimize(d.steal(out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_steal_throughput<chase_lev_deque<std::uint64_t*>>);
BENCHMARK(BM_steal_throughput<abp_deque<std::uint64_t*>>);
BENCHMARK(BM_steal_throughput<locked_deque<std::uint64_t*>>);

}  // namespace

BENCHMARK_MAIN();
