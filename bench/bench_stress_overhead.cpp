// Chaos-hook overhead budget: the CILKPP_STRESS hooks must be cheap enough
// to stay compiled in by default.
//
// google-benchmark pairs on the real scheduler: fib with no policy
// installed (each chaos point is one relaxed/acquire load + branch on a
// null pointer), the same fib with an inert policy installed (the virtual
// dispatch cost with all perturbation chances at zero), and with a mildly
// adversarial seeded policy (what a stress run actually pays).
#include <benchmark/benchmark.h>

#include "runtime/scheduler.hpp"
#include "stress/chaos.hpp"
#include "workloads/fib.hpp"

namespace {

using cilkpp::rt::context;
using cilkpp::rt::scheduler;
using cilkpp::stress::chaos_params;
using cilkpp::stress::seeded_chaos;

constexpr unsigned kFibN = 27;
constexpr unsigned kFibCutoff = 12;  // small grain → many chaos points

void BM_fib_no_policy(benchmark::State& state) {
  const auto workers = static_cast<unsigned>(state.range(0));
  scheduler sched(workers);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.run(
        [](context& ctx) { return cilkpp::workloads::fib(ctx, kFibN, kFibCutoff); }));
  }
}
BENCHMARK(BM_fib_no_policy)->Arg(1)->Arg(4);

void BM_fib_null_policy(benchmark::State& state) {
  // All chances zero: measures the hook dispatch itself, not the chaos.
  const auto workers = static_cast<unsigned>(state.range(0));
  scheduler sched(workers);
  seeded_chaos policy(chaos_params{}, /*seed=*/0, sched.num_workers());
  sched.install_chaos(&policy);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.run(
        [](context& ctx) { return cilkpp::workloads::fib(ctx, kFibN, kFibCutoff); }));
  }
  sched.remove_chaos();
  state.counters["points"] =
      benchmark::Counter(static_cast<double>(policy.stats().points));
}
BENCHMARK(BM_fib_null_policy)->Arg(1)->Arg(4);

void BM_fib_seeded_chaos(benchmark::State& state) {
  const auto workers = static_cast<unsigned>(state.range(0));
  scheduler sched(workers);
  seeded_chaos policy(/*seed=*/1, sched.num_workers());
  sched.install_chaos(&policy);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.run(
        [](context& ctx) { return cilkpp::workloads::fib(ctx, kFibN, kFibCutoff); }));
  }
  sched.remove_chaos();
  const cilkpp::stress::chaos_stats s = policy.stats();
  state.counters["points"] = benchmark::Counter(static_cast<double>(s.points));
  state.counters["yields"] = benchmark::Counter(static_cast<double>(s.yields));
  state.counters["sleeps"] = benchmark::Counter(static_cast<double>(s.sleeps));
}
BENCHMARK(BM_fib_seeded_chaos)->Arg(1)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
