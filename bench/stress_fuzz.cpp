// Deep schedule fuzzing — the nightly CI driver.
//
// Runs fuzz batches (fresh program seeds every batch, all chaos seeds
// rotated) until a wall-clock budget expires, then prints a summary. Any
// oracle failure is written — with its deterministically-reproducing seeds
// — to a failure file that CI uploads as an artifact, and the process
// exits nonzero.
//
// Environment:
//   STRESS_FUZZ_SECONDS  wall-clock budget (default 5)
//   STRESS_FUZZ_SEED     base program seed of the first batch (default
//                        derived from the clock, printed for replay)
//   STRESS_FUZZ_OUT      failure file path (default stress-failures.txt)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "stress/oracle.hpp"

int main() {
  using namespace cilkpp::stress;

  double budget_s = 5.0;
  if (const char* e = std::getenv("STRESS_FUZZ_SECONDS")) {
    budget_s = std::atof(e);
    if (budget_s <= 0) budget_s = 5.0;
  }
  std::uint64_t base_seed = static_cast<std::uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count());
  if (const char* e = std::getenv("STRESS_FUZZ_SEED")) {
    base_seed = std::strtoull(e, nullptr, 0);
  }
  const char* out_path = std::getenv("STRESS_FUZZ_OUT");
  if (out_path == nullptr || out_path[0] == '\0') {
    out_path = "stress-failures.txt";
  }

  std::printf("stress_fuzz: budget=%.0fs base_seed=%llu (replay with "
              "STRESS_FUZZ_SEED=%llu)\n",
              budget_s, static_cast<unsigned long long>(base_seed),
              static_cast<unsigned long long>(base_seed));

  stress_harness harness;
  fuzz_report total;
  const auto t0 = std::chrono::steady_clock::now();
  unsigned batch = 0;
  while (true) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (elapsed >= budget_s) break;

    fuzz_options opt;
    opt.programs = 100;
    opt.base_program_seed = base_seed + std::uint64_t{batch} * opt.programs;
    // Deeper programs than tier-1, and every chaos seed on every program.
    opt.size = 20;
    opt.chaos_per_program =
        static_cast<unsigned>(default_chaos_seeds().size());
    const fuzz_report rep = harness.fuzz(opt);

    total.programs += rep.programs;
    total.threaded_runs += rep.threaded_runs;
    total.chaos_seeds_used =
        std::max(total.chaos_seeds_used, rep.chaos_seeds_used);
    total.fingerprint = hash_combine(total.fingerprint, rep.fingerprint);
    for (const stress_failure& f : rep.failures) total.failures.push_back(f);
    ++batch;
    if (!rep.ok()) break;  // stop early: the seeds are already in hand
  }

  std::printf("%s\n", total.summary().c_str());
  if (total.ok()) return 0;

  if (std::FILE* out = std::fopen(out_path, "w")) {
    for (const stress_failure& f : total.failures) {
      std::fprintf(out, "%s\n\n", f.describe().c_str());
    }
    std::fclose(out);
    std::printf("stress_fuzz: wrote %zu failure(s) to %s\n",
                total.failures.size(), out_path);
  }
  return 1;
}
