#!/usr/bin/env python3
"""Perf regression gate for the spawn/join fast path.

Compares a fresh BENCH_spawn_path.json (written by bench_spawn_path)
against the checked-in baseline and fails when the measured spawn+sync
pair exceeds RATIO_MAX times the baseline envelope. The envelope is a
conservative shared-runner number, so a failure here means the fast path
structurally regressed (a lock, a malloc, pedigree maintenance growing an
allocation) — not noise.

Usage: compare_spawn_baseline.py <measured.json> <baseline.json>
Exit status: 0 within budget, 1 over budget or unreadable input.
"""

import json
import sys

RATIO_MAX = 1.3
# Catastrophic-only floor for the wide-pfor contention leg: the baseline
# envelope is a dev-host number and CI runners are slower, so only a
# collapse below a quarter of it (the slab layer dead, every task back on
# ::operator new) fails the gate.
WIDE_PFOR_FLOOR_RATIO = 0.25


def wide_pfor_rate(doc: dict) -> float:
    for leg in doc.get("throughput", []):
        if leg.get("workload") == "wide_pfor_grain1":
            return float(leg["spawns_per_sec"])
    raise KeyError("no wide_pfor_grain1 throughput leg")


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    try:
        with open(sys.argv[1]) as f:
            measured = json.load(f)
        with open(sys.argv[2]) as f:
            baseline = json.load(f)
        pair = float(measured["pair_ns"])
        base = float(baseline["pair_ns"])
    except (OSError, KeyError, ValueError) as e:
        print(f"FAIL: cannot read pair_ns: {e}", file=sys.stderr)
        return 1
    budget = base * RATIO_MAX
    ok = pair <= budget
    verdict = "OK" if ok else "FAIL"
    print(
        f"{verdict}: spawn+sync pair {pair:.1f}ns, "
        f"baseline {base:.1f}ns, budget {budget:.1f}ns ({RATIO_MAX}x)"
    )
    try:
        wide = wide_pfor_rate(measured)
        wide_base = float(baseline["wide_pfor_spawns_per_sec"])
    except (KeyError, ValueError) as e:
        print(f"FAIL: cannot read wide-pfor leg: {e}", file=sys.stderr)
        return 1
    floor = wide_base * WIDE_PFOR_FLOOR_RATIO
    wide_ok = wide >= floor
    ok = ok and wide_ok
    print(
        f"{'OK' if wide_ok else 'FAIL'}: wide-pfor {wide:.0f} spawns/s, "
        f"baseline {wide_base:.0f}, floor {floor:.0f} "
        f"({WIDE_PFOR_FLOOR_RATIO}x)"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
