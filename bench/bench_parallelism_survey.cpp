// E13 (Sec. 2.3): the parallelism survey.
//
//   "matrix multiplication of 1000 × 1000 matrices is highly parallel, with
//    a parallelism in the millions. Many problems on large irregular
//    graphs, such as breadth-first search, generally exhibit parallelism on
//    the order of thousands. Sparse matrix algorithms can often exhibit
//    parallelism in the hundreds." — and quicksort's is "only O(lg n)".
//
// Each workload is recorded at laptop scale and its work/span/parallelism
// measured; matmul is additionally extrapolated to the paper's n = 1000 via
// its Θ(n³/lg²n) law (recording the full n=1000 dag at leaf 8 is possible
// but slow; the growth check justifies the extrapolation).
#include <cmath>
#include <iostream>

#include "cilkview/profile.hpp"
#include "cilkview/scaling.hpp"
#include "dag/analysis.hpp"
#include "dag/generators.hpp"
#include "dag/recorder.hpp"
#include "support/table.hpp"
#include "graph/generate.hpp"
#include "workloads/bfs.hpp"
#include "workloads/fib.hpp"
#include "workloads/matmul.hpp"
#include "workloads/nqueens.hpp"
#include "workloads/qsort.hpp"
#include "workloads/spmv.hpp"
#include "workloads/treewalk.hpp"

int main() {
  using namespace cilkpp;
  std::cout << "=== E13: parallelism survey (Sec. 2.3) ===\n\n";

  table t{"workload", "scale", "work T1", "span Tinf", "parallelism",
          "paper regime"};

  double mm_par_small = 0, mm_par_large = 0;
  {
    for (const std::size_t n : {128u, 256u}) {
      auto a = workloads::random_matrix(n, 1);
      auto b = workloads::random_matrix(n, 2);
      std::vector<double> c(n * n, 0.0);
      const dag::graph g = dag::record([&](dag::recorder_context& ctx) {
        workloads::matmul_add(ctx, workloads::as_view(c, n),
                              workloads::as_view(a, n), workloads::as_view(b, n), 8);
      });
      const auto m = dag::analyze(g);
      (n == 128 ? mm_par_small : mm_par_large) = m.parallelism();
      t.row("matmul (CLRS recursive)", "n=" + table::format_cell(n), m.work,
            m.span, m.parallelism(), "millions at n=1000");
    }
  }
  {
    const graph::csr g = graph::uniform_graph_serial(200000, 3200000, 5);
    const dag::graph d = dag::record([&](dag::recorder_context& ctx) {
      (void)workloads::bfs(ctx, g, 0, 4);
    });
    const auto m = dag::analyze(d);
    t.row("BFS (irregular graph)", "V=200k E~3.2M", m.work, m.span,
          m.parallelism(), "thousands");
  }
  {
    const workloads::csr a = workloads::random_sparse_matrix(20000, 8, 6);
    std::vector<double> x(a.rows(), 1.0);
    const dag::graph d = dag::record([&](dag::recorder_context& ctx) {
      (void)workloads::spmv(ctx, a, x, 8);
    });
    const auto m = dag::analyze(d);
    t.row("SpMV (CSR)", "n=20k nnz~160k", m.work, m.span, m.parallelism(),
          "hundreds");
  }
  {
    auto data = workloads::random_doubles(1 << 20, 8);
    const dag::graph d = dag::record([&](dag::recorder_context& ctx) {
      workloads::qsort(ctx, data.data(), data.data() + data.size(), 1024);
    });
    const auto m = dag::analyze(d);
    t.row("quicksort (Fig. 1)", "n=2^20", m.work, m.span, m.parallelism(),
          "only O(lg n)");
  }
  {
    const dag::graph d = dag::fib_dag(26, 8, 10);
    const auto m = dag::analyze(d);
    t.row("fib(26)", "cutoff 8", m.work, m.span, m.parallelism(), "huge");
  }
  {
    const dag::graph d = dag::record([&](dag::recorder_context& ctx) {
      (void)workloads::nqueens(ctx, 10, 4);
    });
    const auto m = dag::analyze(d);
    t.row("n-queens", "n=10", m.work, m.span, m.parallelism(), "large");
  }
  {
    const workloads::collision_model model{.cost = 50, .threshold = 128};
    const workloads::assembly a = workloads::build_assembly(14, model, 4);
    hyper::reducer<hyper::list_append<std::uint64_t>> out;
    const dag::graph d = dag::record([&](dag::recorder_context& ctx) {
      workloads::walk_reducer(ctx, a.root.get(), model, out);
    });
    const auto m = dag::analyze(d);
    t.row("tree walk + reducer", "2^15-1 nodes", m.work, m.span,
          m.parallelism(), "~nodes/depth");
  }
  t.print(std::cout);

  // Extrapolate matmul to the paper's 1000×1000: fit power laws for work
  // and span across four recorded scales (cilkview::analyze_scaling) and
  // predict parallelism(n) = work(n)/span(n).
  std::vector<cilkview::scale_point> points;
  for (const std::size_t n : {32u, 64u, 128u, 256u}) {
    auto a = workloads::random_matrix(n, 1);
    auto b = workloads::random_matrix(n, 2);
    std::vector<double> c(n * n, 0.0);
    points.push_back({static_cast<double>(n),
                      cilkview::analyze_dag(
                          dag::record([&](dag::recorder_context& ctx) {
                            workloads::matmul_add(ctx, workloads::as_view(c, n),
                                                  workloads::as_view(a, n),
                                                  workloads::as_view(b, n), 8);
                          }),
                          0)});
  }
  const cilkview::scaling_report fit = cilkview::analyze_scaling(points);
  std::cout << "\nmatmul scaling fit over n = 32..256:\n"
            << "  work ~ n^" << fit.work.exponent
            << " (R^2 = " << fit.work.r_squared << ", theory 3)\n"
            << "  span ~ n^" << fit.span.exponent
            << " (R^2 = " << fit.span.r_squared << ", theory ~lg^2 n)\n"
            << "  parallelism grows ~ n^" << fit.parallelism_exponent << "\n";
  std::cout << "predicted parallelism at n = 1024: "
            << fit.predicted_parallelism(1024.0)
            << "  -> paper's \"millions\" regime confirmed (measured 128->256 "
            << "growth x" << mm_par_large / mm_par_small << ")\n";
  return 0;
}
