// E3 (Sec. 2.1–2.3): the Work Law and the Span Law on a family of dag
// shapes. For every shape and every P the simulated TP must respect
// TP ≥ max(T1/P, T∞), and the speedup must cap at min(P, parallelism).
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "dag/analysis.hpp"
#include "dag/generators.hpp"
#include "sim/machine.hpp"
#include "support/table.hpp"

int main() {
  using namespace cilkpp;
  std::cout << "=== E3: the Work Law and the Span Law ===\n\n";

  const std::vector<std::pair<std::string, dag::graph>> shapes = [] {
    std::vector<std::pair<std::string, dag::graph>> v;
    v.emplace_back("chain (parallelism 1)", dag::chain(4096, 16));
    v.emplace_back("wide fan (width 256)", dag::wide_fan(256, 1024));
    v.emplace_back("fib(18) cutoff 4", dag::fib_dag(18, 4, 25));
    v.emplace_back("cilk_for 8192 iters", dag::loop_dag(8192, 16, 20));
    v.emplace_back("random SP dag", dag::random_sp_dag(2000, 40, 12345));
    return v;
  }();

  bool all_laws_hold = true;
  for (const auto& [name, g] : shapes) {
    const dag::metrics m = dag::analyze(g);
    table t{"P", "T_P (sim)", "work-law T1/P", "span-law Tinf",
            "speedup", "cap min(P,par)"};
    for (const unsigned procs : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      sim::machine_config cfg;
      cfg.processors = procs;
      cfg.steal_latency = 8;
      cfg.seed = 99;
      const sim::sim_result r = sim::simulate(g, cfg);
      const double work_law = static_cast<double>(m.work) / procs;
      const double span_law = static_cast<double>(m.span);
      all_laws_hold &= static_cast<double>(r.makespan) >= work_law - 1e-9;
      all_laws_hold &= r.makespan >= m.span;
      t.row(procs, r.makespan, work_law, span_law, r.speedup(m.work),
            dag::speedup_upper_bound(m, procs));
    }
    t.set_title(name + "  (T1=" + table::format_cell(m.work) +
                ", Tinf=" + table::format_cell(m.span) +
                ", parallelism=" + table::format_cell(m.parallelism()) + ")");
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << (all_laws_hold
                    ? "RESULT: Work Law and Span Law held for every run.\n"
                    : "RESULT: LAW VIOLATION DETECTED (simulator bug).\n");
  return all_laws_hold ? 0 : 1;
}
