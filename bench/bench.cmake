# Experiment harness: one binary per experiment ID of DESIGN.md §3.
# Binaries are emitted into ${CMAKE_BINARY_DIR}/bench (and nothing else is),
# so `for b in build/bench/*; do $b; done` regenerates every table/figure.

function(cilkpp_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE ${ARGN})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

cilkpp_add_bench(bench_fig2_dag_model cilkpp_dag cilkpp_sim)
cilkpp_add_bench(bench_amdahl cilkpp_dag cilkpp_sim cilkpp_cilkview)
cilkpp_add_bench(bench_work_span_laws cilkpp_dag cilkpp_sim)
cilkpp_add_bench(bench_fig3_qsort_profile cilkpp_workloads cilkpp_dag cilkpp_sim cilkpp_cilkview)
cilkpp_add_bench(bench_greedy_bound cilkpp_dag cilkpp_sim cilkpp_workloads)
cilkpp_add_bench(bench_serial_overhead cilkpp_workloads cilkpp_runtime cilkpp_support benchmark::benchmark)
cilkpp_add_bench(bench_spawn_path cilkpp_workloads cilkpp_runtime cilkpp_support)
cilkpp_add_bench(bench_steal_locality cilkpp_workloads cilkpp_runtime cilkpp_support)
cilkpp_add_bench(bench_stack_space cilkpp_dag cilkpp_sim)
cilkpp_add_bench(bench_steal_frequency cilkpp_dag cilkpp_sim cilkpp_workloads)
cilkpp_add_bench(bench_multiprogramming cilkpp_dag cilkpp_sim)
if(CILKPP_SERVE)
  # The real-runtime shared-vs-partitioned leg of E9 rides along when the
  # serving layer is built.
  target_compile_definitions(bench_multiprogramming PRIVATE CILKPP_BENCH_SERVE=1)
  target_link_libraries(bench_multiprogramming PRIVATE cilkpp_serve cilkpp_workloads)
  cilkpp_add_bench(bench_jobserver cilkpp_serve cilkpp_workloads)
endif()
cilkpp_add_bench(bench_composability cilkpp_dag cilkpp_sim cilkpp_workloads)
cilkpp_add_bench(bench_cilkscreen cilkpp_cilkscreen cilkpp_workloads cilkpp_dag)
cilkpp_add_bench(bench_reducer_vs_mutex cilkpp_workloads cilkpp_dag cilkpp_sim)
cilkpp_add_bench(bench_parallelism_survey cilkpp_workloads cilkpp_dag cilkpp_cilkview)
cilkpp_add_bench(bench_graph cilkpp_graph cilkpp_runtime cilkpp_dag cilkpp_sim cilkpp_cilkview)
cilkpp_add_bench(bench_ablation_deque cilkpp_deque benchmark::benchmark Threads::Threads)
cilkpp_add_bench(bench_ablation_policy cilkpp_dag cilkpp_sim)
cilkpp_add_bench(bench_ablation_grain cilkpp_dag cilkpp_sim cilkpp_workloads)
cilkpp_add_bench(bench_ablation_burden cilkpp_dag cilkpp_sim cilkpp_cilkview cilkpp_workloads)
cilkpp_add_bench(bench_trace_overhead cilkpp_trace cilkpp_workloads benchmark::benchmark)
cilkpp_add_bench(bench_stress_overhead cilkpp_stress cilkpp_workloads benchmark::benchmark)
cilkpp_add_bench(bench_lint_overhead cilkpp_lint cilkpp_runtime)
cilkpp_add_bench(bench_memlens_overhead cilkpp_memlens cilkpp_cilkscreen cilkpp_support)
cilkpp_add_bench(stress_fuzz cilkpp_stress)
