// E14d (ablation): sensitivity of the cilkview burdened-speedup estimate
// (Fig. 3's lower curve) to the assumed per-steal burden.
//
// The estimate must stay a LOWER bound on the simulated speedup for
// matching steal latency, and degrade gracefully as the burden grows —
// that's what makes it a useful warning rather than noise.
#include <iostream>

#include "cilkview/profile.hpp"
#include "dag/analysis.hpp"
#include "dag/recorder.hpp"
#include "sim/machine.hpp"
#include "support/table.hpp"
#include "workloads/qsort.hpp"

int main() {
  using namespace cilkpp;
  std::cout << "=== E14d: burden-sensitivity of the Fig. 3 lower curve ===\n\n";

  auto data = workloads::random_doubles(1 << 18, 4);
  const dag::graph g = dag::record([&](dag::recorder_context& ctx) {
    workloads::qsort(ctx, data.data(), data.data() + data.size(), 512);
  });
  const dag::metrics m = dag::analyze(g);
  constexpr unsigned procs = 16;

  sim::machine_config cfg;
  cfg.processors = procs;
  cfg.seed = 37;

  table t{"burden/latency", "burdened span", "burdened parallelism",
          "estimate @P=16", "simulated @P=16", "estimate <= simulated?"};
  bool sound = true;
  for (const std::uint64_t burden : {0ull, 10ull, 100ull, 1000ull, 10000ull}) {
    const cilkview::profile p = cilkview::analyze_dag(g, burden);
    const double est = cilkview::burdened_speedup_estimate(p, procs);
    cfg.steal_latency = burden == 0 ? 1 : burden;
    const double sim_speedup = sim::simulate(g, cfg).speedup(m.work);
    const bool ok = est <= sim_speedup * 1.05;  // 5% simulator noise margin
    sound &= ok;
    t.row(burden, p.burdened_span, p.burdened_parallelism(), est, sim_speedup,
          ok ? "yes" : "NO");
  }
  t.set_title("qsort 2^18 dag: parallelism " + table::format_cell(m.parallelism()));
  t.print(std::cout);

  std::cout << (sound ? "\nRESULT: estimate stayed a sound lower bound at "
                        "every burden.\n"
                      : "\nRESULT: estimate exceeded measurement somewhere — "
                        "check the model.\n");
  return sound ? 0 : 1;
}
