// E8 (Sec. 3.2): "If an application exhibits sufficient parallelism, one
// can prove mathematically that stealing is infrequent" — expected
// O(P·T∞) steal attempts, so the fraction of time spent communicating is
// O(P·T∞/T1) = O(P/parallelism).
//
// The table reports steals, steals/(P·T∞) (the bound's constant), and the
// fraction of strands that were stolen — which collapses as parallelism
// grows relative to P.
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "dag/analysis.hpp"
#include "dag/generators.hpp"
#include "dag/recorder.hpp"
#include "sim/machine.hpp"
#include "support/table.hpp"
#include "workloads/qsort.hpp"

int main() {
  using namespace cilkpp;
  std::cout << "=== E8: steal frequency O(P * Tinf) ===\n\n";

  std::vector<std::pair<std::string, dag::graph>> shapes;
  shapes.emplace_back("fib(20) cutoff 5", dag::fib_dag(20, 5, 25));
  shapes.emplace_back("cilk_for 16384", dag::loop_dag(16384, 8, 30));
  {
    auto data = workloads::random_doubles(1 << 17, 9);
    shapes.emplace_back("qsort 2^17 (low parallelism)",
                        dag::record([&](dag::recorder_context& c) {
                          workloads::qsort(c, data.data(),
                                           data.data() + data.size(), 512);
                        }));
  }

  for (const auto& [name, g] : shapes) {
    const dag::metrics m = dag::analyze(g);
    table t{"P", "steals", "attempts", "steals/(P*Tinf)", "stolen strand %",
            "utilization"};
    for (const unsigned procs : {2u, 4u, 8u, 16u, 32u}) {
      sim::machine_config cfg;
      cfg.processors = procs;
      cfg.steal_latency = 10;
      cfg.seed = 4;
      const sim::sim_result r = sim::simulate(g, cfg);
      t.row(procs, r.steals, r.steal_attempts,
            static_cast<double>(r.steals) /
                (static_cast<double>(procs) * static_cast<double>(m.span)),
            100.0 * static_cast<double>(r.steals) /
                static_cast<double>(g.num_vertices()),
            r.utilization);
    }
    t.set_title(name + "  (parallelism=" + table::format_cell(m.parallelism()) +
                ", Tinf=" + table::format_cell(m.span) + ")");
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Reading: steals/(P*Tinf) stays O(1) — the Blumofe-Leiserson\n"
               "communication bound; with parallelism >> P almost no strand\n"
               "is ever stolen, so \"all communication and synchronization is\n"
               "incurred only when a worker runs out of work\".\n";
  return 0;
}
