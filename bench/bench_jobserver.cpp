// Tail-latency benchmark for the cilk::serve job server (the ISSUE's
// serving criterion). Thousands of small fib / qsort / spmv jobs flow from
// several submitter threads through three tenants on two isolated runtimes;
// the artifact — BENCH_jobserver.json, same mold as BENCH_spawn_path.json —
// reports overall jobs/sec plus per-tenant p50/p99/p999 for queue wait,
// execution, and end-to-end latency, and CI's perf-smoke job archives and
// sanity-checks it.
//
// Jobs are deliberately tiny (tens of microseconds): the point is to stress
// admission, batching, and dispatch — the per-job server overhead — not the
// workloads themselves. Thresholds are catastrophic-only: ≥10k jobs/sec
// sustained and a sub-second p999, an order of magnitude from today's
// numbers even on the 1-core CI host.
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/job_server.hpp"
#include "serve/runtime_set.hpp"
#include "support/stats.hpp"
#include "support/timing.hpp"
#include "workloads/fib.hpp"
#include "workloads/qsort.hpp"
#include "workloads/sparse.hpp"
#include "workloads/spmv.hpp"

namespace {

using namespace cilkpp;
using namespace cilkpp::serve;

constexpr std::size_t kJobsPerTenant = 4000;  // 12k jobs total
constexpr std::size_t kSubmitters = 3;        // one per tenant

void emit_histogram(json_writer& w, const char* key,
                    const latency_histogram& h) {
  w.key(key);
  w.begin_object();
  w.field("count", h.total());
  if (h.total() > 0) {
    w.field("min_ns", h.min());
    w.field("mean_ns", h.mean());
    w.field("p50_ns", h.p50());
    w.field("p90_ns", h.p90());
    w.field("p99_ns", h.p99());
    w.field("p999_ns", h.p999());
    w.field("max_ns", h.max());
  }
  w.end_object();
}

void emit_tenant(json_writer& w, const tenant_stats& s) {
  w.begin_object();
  w.field("tenant", s.name);
  w.field("submitted", s.submitted);
  w.field("rejected", s.rejected);
  w.field("completed", s.completed);
  emit_histogram(w, "queue", s.latency.queue_ns());
  emit_histogram(w, "exec", s.latency.exec_ns());
  emit_histogram(w, "total", s.latency.total_ns());
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_jobserver.json";
  if (argc > 1) out_path = argv[1];

  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;

  // Two isolated runtimes splitting the machine; tenants: a fib tenant on
  // rt0, qsort + spmv tenants sharing rt1.
  runtime_set set(runtime_set::partitioned(2));

  tenant_options fib_t;
  fib_t.name = "fib";
  fib_t.runtime = 0;
  fib_t.queue_capacity = 1024;
  fib_t.policy = admission::block;
  fib_t.batch_max = 64;
  tenant_options qsort_t;
  qsort_t.name = "qsort";
  qsort_t.runtime = 1;
  qsort_t.queue_capacity = 1024;
  qsort_t.policy = admission::block;
  qsort_t.batch_max = 32;
  tenant_options spmv_t;
  spmv_t.name = "spmv";
  spmv_t.runtime = 1;
  spmv_t.queue_capacity = 1024;
  spmv_t.policy = admission::block;
  spmv_t.batch_max = 32;

  job_server srv(set, {fib_t, qsort_t, spmv_t});

  // Shared read-only inputs, prepared up front.
  const std::vector<double> unsorted = workloads::random_doubles(192, 42);
  const workloads::csr mat = workloads::random_sparse_matrix(64, 8, 7);
  const std::vector<double> x(mat.rows(), 1.0);

  // Warmup: a slice of each job kind through the full path.
  for (int i = 0; i < 64; ++i) {
    srv.submit(0, [](rt::context& ctx) {
      return workloads::fib(ctx, 14, 14);
    }).get();
  }
  srv.drain();
  set.reset_stats();
  srv.reset_stats();

  stopwatch sw;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  // Tenant 0: serial-leaf fib jobs (pure compute, no internal spawns).
  submitters.emplace_back([&] {
    for (std::size_t i = 0; i < kJobsPerTenant; ++i) {
      auto f = srv.try_submit(0, [](rt::context& ctx) {
        return workloads::fib(ctx, 14, 14);
      });
      if (f) do_not_optimize(f->get());
    }
  });
  // Tenant 1: small sorts (each job copies then sorts 192 doubles; the
  // cutoff keeps it serial — a job is one request, not one program).
  submitters.emplace_back([&] {
    for (std::size_t i = 0; i < kJobsPerTenant; ++i) {
      auto f = srv.try_submit(1, [&unsorted](rt::context& ctx) {
        std::vector<double> v = unsorted;
        workloads::qsort(ctx, v.begin(), v.end());
        return v.front();
      });
      if (f) do_not_optimize(f->get());
    }
  });
  // Tenant 2: spmv jobs — these DO spawn internally (parallel_for over
  // rows), exercising server-dispatch composed with in-job parallelism.
  submitters.emplace_back([&] {
    for (std::size_t i = 0; i < kJobsPerTenant; ++i) {
      auto f = srv.try_submit(2, [&mat, &x](rt::context& ctx) {
        return workloads::spmv(ctx, mat, x, 16).front();
      });
      if (f) do_not_optimize(f->get());
    }
  });
  for (auto& t : submitters) t.join();
  srv.drain();
  const double elapsed_s = sw.elapsed_s();

  const tenant_stats tstats[] = {srv.tenant_snapshot(0), srv.tenant_snapshot(1),
                                 srv.tenant_snapshot(2)};
  std::uint64_t completed = 0;
  latency_histogram all_total;
  for (const tenant_stats& s : tstats) {
    completed += s.completed;
    all_total.merge(s.latency.total_ns());
  }
  const double jobs_per_sec =
      elapsed_s > 0 ? static_cast<double>(completed) / elapsed_s : 0;

  const isolation_report iso = set.verify_isolation();

  // Catastrophic-only thresholds (see header comment).
  constexpr double jobs_per_sec_min = 10'000.0;
  constexpr double p999_ns_max = 1e9;  // a sub-second tail, even on 1 core
  bool ok = true;
  if (jobs_per_sec < jobs_per_sec_min) {
    std::fprintf(stderr, "FAIL: %.0f jobs/s < %.0f\n", jobs_per_sec,
                 jobs_per_sec_min);
    ok = false;
  }
  if (all_total.total() > 0 &&
      static_cast<double>(all_total.p999()) > p999_ns_max) {
    std::fprintf(stderr, "FAIL: p999 %.0f ns > %.0f ns\n",
                 static_cast<double>(all_total.p999()), p999_ns_max);
    ok = false;
  }
  if (completed != kJobsPerTenant * 3) {
    std::fprintf(stderr, "FAIL: completed %llu != %zu\n",
                 static_cast<unsigned long long>(completed),
                 kJobsPerTenant * 3);
    ok = false;
  }
  if (!iso.isolated) {
    std::fprintf(stderr, "FAIL: isolation audit failed\n");
    ok = false;
  }

  json_writer w;
  w.begin_object();
  w.field("benchmark", "jobserver");
  w.field("hardware_concurrency", hw);
  w.field("runtimes", static_cast<std::uint64_t>(set.size()));
  w.field("submitters", static_cast<std::uint64_t>(kSubmitters));
  w.field("jobs_completed", completed);
  w.field("elapsed_s", elapsed_s);
  w.field("jobs_per_sec", jobs_per_sec);
  emit_histogram(w, "total_all_tenants", all_total);
  w.key("tenants");
  w.begin_array();
  for (const tenant_stats& s : tstats) emit_tenant(w, s);
  w.end_array();
  w.key("isolation");
  w.begin_object();
  w.field("isolated", iso.isolated);
  w.key("instances");
  w.begin_array();
  for (const instance_isolation& inst : iso.instances) {
    w.begin_object();
    w.field("name", inst.name);
    w.field("workers", inst.workers);
    w.field("steals", inst.steals);
    w.field("self_steals", inst.self_steals);
    w.field("provenance_consistent", inst.consistent());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("thresholds");
  w.begin_object();
  w.field("jobs_per_sec_min", jobs_per_sec_min);
  w.field("p999_ns_max", p999_ns_max);
  w.field("passed", ok);
  w.end_object();
  w.end_object();

  const std::string doc = w.take();
  std::ofstream out(out_path);
  out << doc;
  out.close();
  std::printf("%s", doc.c_str());
  std::printf("wrote %s\n", out_path);
  return ok ? 0 : 1;
}
