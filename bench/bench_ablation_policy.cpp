// E14b (ablation, DESIGN.md §4.1): child-first (Cilk's work-first) vs
// parent-first (help-first) spawn policy.
//
// Makespans are comparable on balanced dags, but the memory guarantee of
// Sec. 3.1 belongs to child-first alone: on the wide spawn loop the
// parent-first producer floods its deque faster than thieves drain it.
#include <iostream>

#include "dag/analysis.hpp"
#include "dag/generators.hpp"
#include "sim/machine.hpp"
#include "support/table.hpp"

int main() {
  using namespace cilkpp;
  std::cout << "=== E14b: spawn policy ablation (child-first vs parent-first) ===\n\n";

  struct shape {
    const char* name;
    dag::graph g;
  };
  shape shapes[] = {
      {"fib(18) cutoff 4", dag::fib_dag(18, 4, 25)},
      {"cilk_for 8192", dag::loop_dag(8192, 8, 30)},
      {"spawn loop 100k", dag::spawn_loop_dag(100000, 50)},
  };

  for (const auto& s : shapes) {
    const dag::metrics m = dag::analyze(s.g);
    table t{"P", "policy", "T_P", "speedup", "steals", "peak residency"};
    for (const unsigned procs : {4u, 16u}) {
      for (const auto policy :
           {sim::spawn_policy::child_first, sim::spawn_policy::parent_first}) {
        sim::machine_config cfg;
        cfg.processors = procs;
        cfg.steal_latency = 10;
        cfg.seed = 23;
        cfg.policy = policy;
        const auto r = sim::simulate(s.g, cfg);
        t.row(procs,
              policy == sim::spawn_policy::child_first ? "child-first"
                                                       : "parent-first",
              r.makespan, r.speedup(m.work), r.steals, r.peak_residency);
      }
    }
    t.set_title(std::string(s.name) + "  (T1=" + table::format_cell(m.work) +
                ", parallelism=" + table::format_cell(m.parallelism()) + ")");
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Reading: on the spawn loop, parent-first residency grows with\n"
               "the iteration count while child-first stays O(P) — why Cilk++\n"
               "dives into the child and leaves the continuation to thieves.\n";
  return 0;
}
