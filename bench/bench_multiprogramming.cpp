// E9 (Sec. 3.2): "If a worker becomes descheduled by the operating system
// … the work of that worker can be stolen away by other workers. Thus,
// Cilk++ programs tend to play nicely with other jobs on the system."
//
// An adversary takes processors offline for windows of the execution. With
// work stealing, the survivors absorb the victims' deques and the makespan
// degrades roughly in proportion to the lost capacity; with static
// (no-stealing) scheduling, work stranded on an offline processor stalls
// the whole computation until the window ends.
#include <iostream>

#include "dag/analysis.hpp"
#include "dag/generators.hpp"
#include "sim/baselines.hpp"
#include "sim/machine.hpp"
#include "support/table.hpp"

int main() {
  using namespace cilkpp;
  std::cout << "=== E9: multiprogrammed environments (descheduled workers) ===\n\n";

  const dag::graph g = dag::loop_dag(8192, 8, 50);
  const dag::metrics m = dag::analyze(g);
  constexpr unsigned procs = 8;

  // Baseline makespans with all processors online.
  sim::machine_config base;
  base.processors = procs;
  base.steal_latency = 10;
  base.seed = 21;
  const auto t_online = sim::simulate(g, base).makespan;

  table t{"offline procs", "window", "work-steal T_P", "vs online",
          "static-local T_P", "vs online"};
  const std::uint64_t horizon = 4 * t_online;  // long windows: truly lost capacity
  for (const unsigned victims : {1u, 2u, 4u}) {
    for (const std::uint64_t window_start : {t_online / 4, std::uint64_t{0}}) {
      sim::machine_config cfg = base;
      cfg.offline.assign(victims, {sim::offline_interval{window_start, horizon}});
      const auto ws = sim::simulate(g, cfg);

      sim::baseline_config bc;
      bc.processors = procs;
      bc.seed = 21;
      bc.offline = cfg.offline;
      const auto st = sim::simulate_static_local(g, bc);

      const std::string window = "[" + table::format_cell(window_start) + ",inf)";
      t.row(victims, window, ws.makespan,
            static_cast<double>(ws.makespan) / static_cast<double>(t_online),
            st.makespan,
            static_cast<double>(st.makespan) / static_cast<double>(t_online));
    }
  }
  t.set_title("P = 8, cilk_for dag, T1 = " + table::format_cell(m.work) +
              ", online T_8 = " + table::format_cell(t_online));
  t.print(std::cout);

  std::cout << "\nReading: losing k of 8 workers costs work stealing about\n"
               "8/(8-k) in makespan (graceful); static scheduling strands the\n"
               "victims' queues and keeps the survivors idle.\n";
  return 0;
}
