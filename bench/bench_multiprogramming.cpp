// E9 (Sec. 3.2): "If a worker becomes descheduled by the operating system
// … the work of that worker can be stolen away by other workers. Thus,
// Cilk++ programs tend to play nicely with other jobs on the system."
//
// An adversary takes processors offline for windows of the execution. With
// work stealing, the survivors absorb the victims' deques and the makespan
// degrades roughly in proportion to the lost capacity; with static
// (no-stealing) scheduling, work stranded on an offline processor stalls
// the whole computation until the window ends.
//
// A second, real-runtime leg (built when cilk::serve is) asks the
// multi-tenant version of the same question: the same mixed job load pushed
// through (a) one scheduler shared by both tenants and (b) two
// affinity-partitioned runtimes, comparing throughput and tail latency in
// one artifact (BENCH_multiprogramming.json).
#include <iostream>

#include "dag/analysis.hpp"
#include "dag/generators.hpp"
#include "sim/baselines.hpp"
#include "sim/machine.hpp"
#include "support/table.hpp"

#ifndef CILKPP_BENCH_SERVE
#define CILKPP_BENCH_SERVE 0
#endif
#if CILKPP_BENCH_SERVE
#include <fstream>
#include <thread>
#include <vector>

#include "serve/job_server.hpp"
#include "serve/runtime_set.hpp"
#include "support/stats.hpp"
#include "support/timing.hpp"
#include "workloads/fib.hpp"
#include "workloads/qsort.hpp"

namespace {

using namespace cilkpp;
using namespace cilkpp::serve;

struct leg_result {
  std::string config;
  double elapsed_s = 0;
  std::uint64_t completed = 0;
  // Per-tenant end-to-end tails (tenant 0 = fib, tenant 1 = qsort).
  std::vector<tenant_stats> tenants;
  double jobs_per_sec() const {
    return elapsed_s > 0 ? static_cast<double>(completed) / elapsed_s : 0;
  }
};

/// Pushes the same mixed load (fib tenant + qsort tenant) through whatever
/// runtime topology `opts` describes; `runtime_of` maps tenant -> runtime.
leg_result run_mixed_load(const char* config,
                          std::vector<rt::scheduler_options> opts,
                          std::size_t fib_runtime, std::size_t qsort_runtime) {
  constexpr std::size_t jobs_per_tenant = 2000;
  runtime_set set(std::move(opts));
  tenant_options fib_t;
  fib_t.name = "fib";
  fib_t.runtime = fib_runtime;
  fib_t.queue_capacity = 512;
  fib_t.batch_max = 64;
  tenant_options qsort_t;
  qsort_t.name = "qsort";
  qsort_t.runtime = qsort_runtime;
  qsort_t.queue_capacity = 512;
  qsort_t.batch_max = 32;
  job_server srv(set, {fib_t, qsort_t});

  const std::vector<double> unsorted = workloads::random_doubles(192, 42);
  for (int i = 0; i < 32; ++i) {  // warmup
    srv.submit(0, [](rt::context& ctx) { return workloads::fib(ctx, 12, 12); })
        .get();
  }
  srv.drain();
  srv.reset_stats();

  stopwatch sw;
  std::thread fib_thread([&] {
    for (std::size_t i = 0; i < jobs_per_tenant; ++i) {
      auto f = srv.try_submit(0, [](rt::context& ctx) {
        return workloads::fib(ctx, 14, 14);
      });
      if (f) do_not_optimize(f->get());
    }
  });
  std::thread qsort_thread([&] {
    for (std::size_t i = 0; i < jobs_per_tenant; ++i) {
      auto f = srv.try_submit(1, [&unsorted](rt::context& ctx) {
        std::vector<double> v = unsorted;
        workloads::qsort(ctx, v.begin(), v.end());
        return v.front();
      });
      if (f) do_not_optimize(f->get());
    }
  });
  fib_thread.join();
  qsort_thread.join();
  srv.drain();

  leg_result r;
  r.config = config;
  r.elapsed_s = sw.elapsed_s();
  r.tenants.push_back(srv.tenant_snapshot(0));
  r.tenants.push_back(srv.tenant_snapshot(1));
  for (const tenant_stats& s : r.tenants) r.completed += s.completed;
  return r;
}

void emit_leg(json_writer& w, const leg_result& r) {
  w.begin_object();
  w.field("config", r.config);
  w.field("elapsed_s", r.elapsed_s);
  w.field("jobs_completed", r.completed);
  w.field("jobs_per_sec", r.jobs_per_sec());
  w.key("tenants");
  w.begin_array();
  for (const tenant_stats& s : r.tenants) {
    w.begin_object();
    w.field("tenant", s.name);
    const latency_histogram& h = s.latency.total_ns();
    w.field("count", h.total());
    if (h.total() > 0) {
      w.field("p50_ns", h.p50());
      w.field("p99_ns", h.p99());
      w.field("p999_ns", h.p999());
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

/// The serve leg: shared scheduler vs partitioned runtime_set, one artifact.
void run_serve_leg() {
  std::cout << "\n=== E9b: shared scheduler vs partitioned runtimes "
               "(real runtime, cilk::serve) ===\n\n";

  // (a) both tenants share one scheduler sized to the whole machine;
  // (b) two affinity-partitioned runtimes, one tenant each.
  std::vector<rt::scheduler_options> shared(1);
  shared[0].name = "shared";
  const leg_result a = run_mixed_load("shared", std::move(shared), 0, 0);
  const leg_result b =
      run_mixed_load("partitioned", runtime_set::partitioned(2), 0, 1);

  table t{"config", "jobs/s", "fib p99 (us)", "qsort p99 (us)"};
  for (const leg_result* r : {&a, &b}) {
    t.row(r->config, r->jobs_per_sec(),
          static_cast<double>(r->tenants[0].latency.total_ns().p99()) / 1e3,
          static_cast<double>(r->tenants[1].latency.total_ns().p99()) / 1e3);
  }
  t.print(std::cout);

  json_writer w;
  w.begin_object();
  w.field("benchmark", "multiprogramming_serve");
  unsigned hw = std::thread::hardware_concurrency();
  w.field("hardware_concurrency", hw == 0 ? 1 : hw);
  w.key("legs");
  w.begin_array();
  emit_leg(w, a);
  emit_leg(w, b);
  w.end_array();
  w.end_object();
  std::ofstream out("BENCH_multiprogramming.json");
  out << w.take();
  std::cout << "\nwrote BENCH_multiprogramming.json\n"
               "Reading: partitioning trades peak throughput for tail\n"
               "insulation — one tenant's burst cannot queue behind the\n"
               "other's batch on a runtime it does not share. (On a 1-core\n"
               "host both configs share the core; the isolation is still\n"
               "structural, the insulation only statistical.)\n";
}

}  // namespace
#endif  // CILKPP_BENCH_SERVE

int main() {
  using namespace cilkpp;
  std::cout << "=== E9: multiprogrammed environments (descheduled workers) ===\n\n";

  const dag::graph g = dag::loop_dag(8192, 8, 50);
  const dag::metrics m = dag::analyze(g);
  constexpr unsigned procs = 8;

  // Baseline makespans with all processors online.
  sim::machine_config base;
  base.processors = procs;
  base.steal_latency = 10;
  base.seed = 21;
  const auto t_online = sim::simulate(g, base).makespan;

  table t{"offline procs", "window", "work-steal T_P", "vs online",
          "static-local T_P", "vs online"};
  const std::uint64_t horizon = 4 * t_online;  // long windows: truly lost capacity
  for (const unsigned victims : {1u, 2u, 4u}) {
    for (const std::uint64_t window_start : {t_online / 4, std::uint64_t{0}}) {
      sim::machine_config cfg = base;
      cfg.offline.assign(victims, {sim::offline_interval{window_start, horizon}});
      const auto ws = sim::simulate(g, cfg);

      sim::baseline_config bc;
      bc.processors = procs;
      bc.seed = 21;
      bc.offline = cfg.offline;
      const auto st = sim::simulate_static_local(g, bc);

      const std::string window = "[" + table::format_cell(window_start) + ",inf)";
      t.row(victims, window, ws.makespan,
            static_cast<double>(ws.makespan) / static_cast<double>(t_online),
            st.makespan,
            static_cast<double>(st.makespan) / static_cast<double>(t_online));
    }
  }
  t.set_title("P = 8, cilk_for dag, T1 = " + table::format_cell(m.work) +
              ", online T_8 = " + table::format_cell(t_online));
  t.print(std::cout);

  std::cout << "\nReading: losing k of 8 workers costs work stealing about\n"
               "8/(8-k) in makespan (graceful); static scheduling strands the\n"
               "victims' queues and keeps the survivors idle.\n";

#if CILKPP_BENCH_SERVE
  run_serve_leg();
#endif
  return 0;
}
