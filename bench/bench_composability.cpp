// E10 (Sec. 3.2): performance composability.
//
// "Suppose that a programmer develops a parallel library in Cilk++ … it can
// be invoked multiple times in parallel and continue to exhibit good
// speedup. In contrast, some concurrency platforms constrain library code
// to run on a given number of processors."
//
// Two parallel "library calls" (matmul dags of different sizes) run
// together. Shared work stealing schedules their union on all P
// processors; the fixed-allocation platform gives each library P/2. When
// the calls are unequal, the static split strands half the machine after
// the short call finishes — work stealing keeps everything busy.
#include <iostream>

#include "dag/analysis.hpp"
#include "dag/graph.hpp"
#include "dag/recorder.hpp"
#include "sim/machine.hpp"
#include "support/table.hpp"
#include "workloads/matmul.hpp"

namespace {

cilkpp::dag::graph record_matmul(std::size_t n, std::uint64_t seed) {
  using namespace cilkpp;
  auto a = workloads::random_matrix(n, seed);
  auto b = workloads::random_matrix(n, seed + 1);
  std::vector<double> c(n * n, 0.0);
  return dag::record([&](dag::recorder_context& ctx) {
    workloads::matmul_add(ctx, workloads::as_view(c, n), workloads::as_view(a, n),
                          workloads::as_view(b, n), 16);
  });
}

/// Union of two dags as one multi-source computation (two top-level calls
/// running in parallel).
cilkpp::dag::graph merge(const cilkpp::dag::graph& x, const cilkpp::dag::graph& y) {
  using namespace cilkpp::dag;
  graph m;
  for (vertex_id v = 0; v < x.num_vertices(); ++v) {
    const vertex_id nv = m.add_vertex(x.vertex_work(v));
    m.set_vertex_depth(nv, x.vertex_depth(v));
  }
  const auto offset = static_cast<vertex_id>(x.num_vertices());
  for (vertex_id v = 0; v < y.num_vertices(); ++v) {
    const vertex_id nv = m.add_vertex(y.vertex_work(v));
    m.set_vertex_depth(nv, y.vertex_depth(v));
  }
  for (vertex_id v = 0; v < x.num_vertices(); ++v)
    for (vertex_id s : x.successors(v)) m.add_edge(v, s);
  for (vertex_id v = 0; v < y.num_vertices(); ++v)
    for (vertex_id s : y.successors(v)) m.add_edge(offset + v, offset + s);
  return m;
}

std::uint64_t run_on(const cilkpp::dag::graph& g, unsigned procs) {
  cilkpp::sim::machine_config cfg;
  cfg.processors = procs;
  cfg.steal_latency = 10;
  cfg.seed = 55;
  return cilkpp::sim::simulate(g, cfg).makespan;
}

}  // namespace

int main() {
  using namespace cilkpp;
  std::cout << "=== E10: performance composability ===\n\n";
  constexpr unsigned procs = 8;

  table t{"library A", "library B", "shared WS T_P", "static split T_P",
          "static/shared"};
  const std::size_t sizes[][2] = {{128, 128}, {160, 64}, {192, 32}};
  for (const auto& [na, nb] : sizes) {
    const dag::graph ga = record_matmul(na, 1);
    const dag::graph gb = record_matmul(nb, 7);
    const dag::graph both = merge(ga, gb);

    const std::uint64_t shared = run_on(both, procs);
    // Fixed allocation: each library owns P/2 processors; the pair finishes
    // when the slower call does.
    const std::uint64_t split =
        std::max(run_on(ga, procs / 2), run_on(gb, procs / 2));

    t.row("matmul " + table::format_cell(na),
          "matmul " + table::format_cell(nb), shared, split,
          static_cast<double>(split) / static_cast<double>(shared));
  }
  t.set_title("two parallel library calls on P = 8");
  t.print(std::cout);

  std::cout << "\nReading: equal calls tie; the more unequal the calls, the\n"
               "more the fixed allocation wastes the idle half of the machine\n"
               "while shared work stealing composes transparently.\n";
  return 0;
}
