// E6 (Sec. 3): "on a single core, typical programs run with negligible
// overhead (less than 2%)."
//
// google-benchmark pairs: the serial elision of each program vs the same
// program on the real scheduler with ONE worker. The ratio of the two
// times is the spawn/sync overhead. Like Cilk++ programs in practice, the
// workloads use a grain/cutoff so a spawn guards a meaningful chunk of
// work; the fib cutoff sweep shows how the overhead grows as the guarded
// work shrinks (cutoff 0 = a spawn per addition, the worst case).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/scheduler.hpp"
#include "runtime/serial.hpp"
#include "support/stats.hpp"
#include "support/timing.hpp"
#include "workloads/fib.hpp"
#include "workloads/qsort.hpp"

namespace {

using cilkpp::rt::context;
using cilkpp::rt::scheduler;
using cilkpp::rt::serial_context;

void BM_fib_plain_serial(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cilkpp::workloads::fib_serial(n));
  }
}
BENCHMARK(BM_fib_plain_serial)->Arg(27);

void BM_fib_elision(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const auto cutoff = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    serial_context root;
    benchmark::DoNotOptimize(cilkpp::workloads::fib(root, n, cutoff));
  }
}
BENCHMARK(BM_fib_elision)->Args({27, 16});

void BM_fib_one_worker(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const auto cutoff = static_cast<unsigned>(state.range(1));
  scheduler sched(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.run(
        [n, cutoff](context& ctx) { return cilkpp::workloads::fib(ctx, n, cutoff); }));
  }
}
// Cutoff sweep: overhead vs spawn granularity. Cutoff 16 guards ~1000
// additions per spawn — the "typical program" regime of the <2% claim.
BENCHMARK(BM_fib_one_worker)->Args({27, 20})->Args({27, 16})->Args({27, 12})->Args({27, 8});

// Direct cost of the spawn machinery, independent of any workload: one
// empty spawn + sync per iteration (1 worker, so the owner pops its own
// deque — the paper's "in the common case, Cilk++ operates just like C++").
void BM_spawn_sync_pair(benchmark::State& state) {
  scheduler sched(1);
  sched.run([&](context& ctx) {
    for (auto _ : state) {
      ctx.spawn([](context&) {});
      ctx.sync();
    }
  });
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_spawn_sync_pair);

// The same pair through a plain function call, for the ratio the paper
// quotes (a Cilk++ spawn cost a few times a function call).
void BM_function_call_pair(benchmark::State& state) {
  volatile int sink = 0;
  auto callee = [&]() { sink = sink + 1; };
  for (auto _ : state) {
    callee();
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_function_call_pair);

void BM_qsort_std_sort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto data = cilkpp::workloads::random_doubles(n, 1);
  for (auto _ : state) {
    auto copy = data;
    std::sort(copy.begin(), copy.end());
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_qsort_std_sort)->Arg(1 << 20);

void BM_qsort_elision(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto data = cilkpp::workloads::random_doubles(n, 1);
  for (auto _ : state) {
    auto copy = data;
    serial_context root;
    cilkpp::workloads::qsort(root, copy.data(), copy.data() + n, 2048);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_qsort_elision)->Arg(1 << 20);

void BM_qsort_one_worker(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto data = cilkpp::workloads::random_doubles(n, 1);
  scheduler sched(1);
  for (auto _ : state) {
    auto copy = data;
    sched.run([&](context& ctx) {
      cilkpp::workloads::qsort(ctx, copy.data(), copy.data() + n, 2048);
    });
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_qsort_one_worker)->Arg(1 << 20);

/// Console output as usual, plus a mirror of every run into
/// BENCH_serial_overhead.json (support/stats' json_writer) so E6 numbers are
/// machine-readable without parsing benchmark's console format.
class json_mirror_reporter final : public benchmark::ConsoleReporter {
 public:
  struct row {
    std::string name;
    std::int64_t iterations;
    double real_ns;
    double cpu_ns;
  };
  std::vector<row> rows;

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& r : reports) {
      if (r.error_occurred) continue;
      rows.push_back({r.benchmark_name(), r.iterations, r.GetAdjustedRealTime(),
                      r.GetAdjustedCPUTime()});
    }
    ConsoleReporter::ReportRuns(reports);
  }
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  json_mirror_reporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  cilkpp::json_writer w;
  w.begin_object();
  w.field("benchmark", "serial_overhead");
  w.key("runs");
  w.begin_array();
  for (const auto& r : reporter.rows) {
    w.begin_object();
    w.field("name", r.name);
    w.field("iterations", r.iterations);
    w.field("real_ns", r.real_ns);
    w.field("cpu_ns", r.cpu_ns);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::ofstream("BENCH_serial_overhead.json") << w.take();
  return 0;
}
