// E6 companion: direct measurement of the lock-free spawn/join fast path
// (DESIGN.md §4). Where bench_serial_overhead measures whole programs under
// google-benchmark, this binary times the runtime primitives themselves and
// publishes a machine-readable artifact — BENCH_spawn_path.json — that CI's
// perf-smoke job archives and sanity-checks:
//
//   * pair_ns          one empty cilk_spawn + cilk_sync, 1 worker
//   * spawn throughput spawns/s at P = 1 and P = hardware_concurrency
//                      (fib with cutoff 0: pure spawn machinery), plus a
//                      wide parallel_for leg at P = max(2, hw) that keeps
//                      several workers hammering the join path at once
//   * pool reuse rate  fraction of task allocations served without a fresh
//                      carve (task_pool freelists, or recycled slab blocks
//                      when CILKPP_SLAB routes the pool through src/alloc)
//   * slab flatness    re-running the contention leg against a warmed-up
//                      slab layer must add ZERO system allocations — the
//                      "never touches ::operator new at steady state" claim,
//                      measured (plus magazine refill/return counters and
//                      the wide leg's worker_stats: steal-distance mix,
//                      backoff naps, allocator traffic)
//
// The thresholds at the bottom are deliberately loose — an order of
// magnitude above today's numbers — so the job catches "the fast path grew
// a lock back" regressions, not scheduler noise on shared CI runners.
#include <atomic>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>

#include "alloc/slab.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/stats_json.hpp"
#include "runtime/task_pool.hpp"
#include "support/stats.hpp"
#include "support/timing.hpp"
#include "workloads/fib.hpp"

namespace {

using cilkpp::rt::context;
using cilkpp::rt::scheduler;

/// Best-of-`reps` time for one spawn+sync pair, measured over batches big
/// enough to swamp the clock. Best-of (not mean) because every perturbation
/// — IRQ, sibling CI job, frequency ramp — only ever adds time.
double measure_pair_ns() {
  constexpr std::size_t batch = 200'000;
  constexpr int reps = 5;
  scheduler sched(1);
  double best = 1e30;
  sched.run([&](context& ctx) {
    for (std::size_t i = 0; i < 10'000; ++i) {  // warm pool + arena chunks
      ctx.spawn([](context&) {});
      ctx.sync();
    }
    for (int r = 0; r < reps; ++r) {
      cilkpp::stopwatch sw;
      for (std::size_t i = 0; i < batch; ++i) {
        ctx.spawn([](context&) {});
        ctx.sync();
      }
      const double ns =
          static_cast<double>(sw.elapsed_ns()) / static_cast<double>(batch);
      if (ns < best) best = ns;
    }
  });
  return best;
}

struct throughput {
  unsigned workers = 0;
  const char* workload = "";
  std::uint64_t spawns = 0;
  double elapsed_s = 0;
  double spawns_per_sec() const {
    return elapsed_s > 0 ? static_cast<double>(spawns) / elapsed_s : 0;
  }
};

/// Spawn throughput of fib with cutoff 0 — every addition is a spawn, so
/// virtually all time is the spawn/join machinery.
throughput measure_fib_throughput(unsigned workers, unsigned n) {
  scheduler sched(workers);
  sched.run([n](context& ctx) {  // warmup
    return cilkpp::workloads::fib(ctx, n > 4 ? n - 4 : n, 0);
  });
  sched.reset_stats();
  cilkpp::stopwatch sw;
  const std::uint64_t r =
      sched.run([n](context& ctx) { return cilkpp::workloads::fib(ctx, n, 0); });
  throughput t;
  t.workers = sched.num_workers();
  t.workload = "fib_cutoff0";
  t.elapsed_s = sw.elapsed_s();
  t.spawns = sched.stats().spawns;
  cilkpp::do_not_optimize(r);
  return t;
}

/// Wide flat fan-out: a parallel_for spine with grain 1 keeps one frame
/// spawning while helpers drain the deque — the join-contention leg.
throughput measure_wide_pfor_throughput(unsigned workers, std::uint64_t n,
                                        cilkpp::rt::worker_stats* stats_out) {
  scheduler sched(workers);
  std::atomic<std::uint64_t> sink{0};
  sched.reset_stats();
  cilkpp::stopwatch sw;
  sched.run([&](context& ctx) {
    cilkpp::rt::parallel_for(ctx, std::uint64_t{0}, n,
                             [&](std::uint64_t i) {
                               sink.fetch_add(i, std::memory_order_relaxed);
                             },
                             /*grain=*/1);
  });
  throughput t;
  t.workers = sched.num_workers();
  t.workload = "wide_pfor_grain1";
  t.elapsed_s = sw.elapsed_s();
  t.spawns = sched.stats().spawns;
  if (stats_out != nullptr) *stats_out = sched.stats();
  cilkpp::do_not_optimize(sink.load());
  return t;
}

void emit_throughput(cilkpp::json_writer& w, const throughput& t) {
  w.begin_object();
  w.field("workers", t.workers);
  w.field("workload", t.workload);
  w.field("spawns", t.spawns);
  w.field("elapsed_s", t.elapsed_s);
  w.field("spawns_per_sec", t.spawns_per_sec());
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_spawn_path.json";
  if (argc > 1) out_path = argv[1];

  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;

  const auto pool_before = cilkpp::rt::task_pool_totals();

  const double pair_ns = measure_pair_ns();
  const throughput tp1 = measure_fib_throughput(1, 24);
  const throughput tp_hw =
      hw > 1 ? measure_fib_throughput(hw, 24) : tp1;
  cilkpp::rt::worker_stats wide_stats;
  const throughput tp_wide =
      measure_wide_pfor_throughput(hw > 2 ? hw : 2, 1u << 17, &wide_stats);

  // Allocator leg: by now every size class has been through a full
  // spawn-storm, so the slab layer is warmed up — magazines populated, slabs
  // carved, depot stocked. Re-running the same contention workload (fresh
  // scheduler, fresh worker threads, so this also exercises the depot's
  // magazine-recycling across thread lifetimes) must be FLAT in system
  // allocations: every block comes from a recycled magazine.
  const auto slab_before = cilkpp::alloc::slab_totals();
  const throughput tp_steady =
      measure_wide_pfor_throughput(hw > 2 ? hw : 2, 1u << 17, nullptr);
  const auto slab_after = cilkpp::alloc::slab_totals();
  const std::uint64_t slab_steady_delta =
      slab_after.system_allocs - slab_before.system_allocs;
  cilkpp::do_not_optimize(tp_steady.spawns);

  const auto pool_after = cilkpp::rt::task_pool_totals();
  const std::uint64_t allocs =
      pool_after.total_allocs() - pool_before.total_allocs();
  const std::uint64_t frees =
      pool_after.total_frees() - pool_before.total_frees();
  std::uint64_t reused = 0;
  for (std::size_t c = 0; c < std::size(pool_after.classes); ++c) {
    reused += pool_after.classes[c].reused - pool_before.classes[c].reused;
  }
  const double reuse_rate =
      allocs > 0 ? static_cast<double>(reused) / static_cast<double>(allocs) : 0;

  // Loose sanity thresholds (see header comment): catastrophic-only.
  constexpr double pair_ns_max = 2000.0;
  constexpr double reuse_rate_min = 0.5;
  constexpr double spawns_per_sec_min = 1e5;
  // Steady-state flatness: a warmed-up slab layer must not touch the system
  // allocator again. A handful of stragglers are tolerated (a worker thread
  // whose first magazine pop races the depot restock), a linear-in-spawns
  // count is the regression this catches.
  constexpr std::uint64_t slab_steady_delta_max = 16;
  bool ok = true;
  if (pair_ns > pair_ns_max) {
    std::fprintf(stderr, "FAIL: pair_ns %.1f > %.1f\n", pair_ns, pair_ns_max);
    ok = false;
  }
  if (reuse_rate < reuse_rate_min) {
    std::fprintf(stderr, "FAIL: pool reuse rate %.3f < %.3f\n", reuse_rate,
                 reuse_rate_min);
    ok = false;
  }
  for (const throughput* t : {&tp1, &tp_hw, &tp_wide}) {
    if (t->spawns_per_sec() < spawns_per_sec_min) {
      std::fprintf(stderr, "FAIL: %s @%u workers: %.0f spawns/s < %.0f\n",
                   t->workload, t->workers, t->spawns_per_sec(),
                   spawns_per_sec_min);
      ok = false;
    }
  }
#if CILKPP_SLAB_ENABLED
  if (slab_steady_delta > slab_steady_delta_max) {
    std::fprintf(stderr,
                 "FAIL: slab system allocs not flat at steady state: "
                 "+%llu (max %llu)\n",
                 static_cast<unsigned long long>(slab_steady_delta),
                 static_cast<unsigned long long>(slab_steady_delta_max));
    ok = false;
  }
#endif

  cilkpp::json_writer w;
  w.begin_object();
  w.field("benchmark", "spawn_path");
  w.field("hardware_concurrency", hw);
  w.field("pair_ns", pair_ns);
  w.key("throughput");
  w.begin_array();
  emit_throughput(w, tp1);
  if (hw > 1) emit_throughput(w, tp_hw);
  emit_throughput(w, tp_wide);
  w.end_array();
  w.key("task_pool");
  w.begin_object();
  w.field("allocs", allocs);
  w.field("frees", frees);
  w.field("reused", reused);
  w.field("reuse_rate", reuse_rate);
  w.field("oversize_allocs",
          pool_after.oversize_allocs() - pool_before.oversize_allocs());
  w.field("oversize_frees",
          pool_after.oversize_frees() - pool_before.oversize_frees());
  w.end_object();
  w.key("slab");
  w.begin_object();
  w.field("enabled", CILKPP_SLAB_ENABLED != 0);
  w.field("system_allocs", slab_after.system_allocs);
  w.field("slabs_live", slab_after.slabs_live);
  w.field("magazines_live", slab_after.magazines_live);
  w.field("magazine_refills", slab_after.magazine_refills);
  w.field("magazine_returns", slab_after.magazine_returns);
  w.field("steady_state_system_allocs_delta", slab_steady_delta);
  w.end_object();
  w.key("wide_pfor_worker_stats");
  cilkpp::rt::write_worker_stats(w, wide_stats);
  w.key("thresholds");
  w.begin_object();
  w.field("pair_ns_max", pair_ns_max);
  w.field("reuse_rate_min", reuse_rate_min);
  w.field("spawns_per_sec_min", spawns_per_sec_min);
  w.field("slab_steady_delta_max", slab_steady_delta_max);
  w.field("passed", ok);
  w.end_object();
  w.end_object();

  const std::string doc = w.take();
  std::ofstream out(out_path);
  out << doc;
  out.close();
  std::printf("%s", doc.c_str());
  std::printf("wrote %s\n", out_path);
  return ok ? 0 : 1;
}
