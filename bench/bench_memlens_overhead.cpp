// E-memlens: what does cilk::memlens cost on top of the SP engines?
//
// The analyzer consumes the access stream the engines already produce, so
// the interesting number is the marginal ns/access with the analyzer
// attached vs detached, on a memlens-CLEAN workload (the fast path — every
// access folds into a line history, classifies against its line's
// accessors, and reports nothing):
//   * the SP-bags detector driving a spawn storm of strided writers, each
//     lane touching its own padded line (no sharing by construction),
//     analyzer detached vs attached;
//   * the same under the SP-order engine.
// Built with -DCILKPP_MEMLENS=OFF the attached legs vanish — rows print
// "compiled out" so the table shape is stable across configs — and the
// detached legs measure the same engines without the hook branch.
//
// Emits BENCH_memlens.json (same mold as BENCH_spawn_path.json) for the
// perf-smoke artifact; path defaults to BENCH_memlens.json, argv[1]
// overrides. Exits nonzero only on catastrophic breaches (an attached run
// reporting on the clean corpus, or overhead beyond 50x) — shared CI
// runners are too noisy for tight ratios.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cilkscreen/screen_context.hpp"
#include "memlens/analyzer.hpp"
#include "support/cache.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

namespace {

using namespace cilkpp;

constexpr unsigned kLanes = 256;   // spawned writers per run
constexpr unsigned kWords = 8;     // words per lane = one full line each
constexpr unsigned kReps = 16;     // passes over the lane's line
constexpr unsigned kRounds = 3;    // best-of rounds per leg

/// One padded line per lane: the clean corpus (disjoint lines, zero
/// sharing), mirroring the stress interpreter's stripe pool.
struct alignas(cache_line_size) lane_line {
  std::uint64_t w[kWords] = {};
};

struct leg_result {
  std::uint64_t ns = 0;
  std::uint64_t accesses = 0;
};

/// One detector run: kLanes spawned children, each writing every word of
/// its own line kReps times. Returns elapsed ns + instrumented accesses.
template <typename D>
leg_result screen_run(std::vector<lane_line>& pool, bool with_lens) {
  D d;
#if CILKPP_MEMLENS_ENABLED
  typename D::memlens_analyzer ml;
  if (with_lens) d.attach_memlens(&ml);
#else
  (void)with_lens;
#endif
  stopwatch sw;
  screen::run_under_detector(d, [&](screen::basic_screen_context<D>& ctx) {
    for (unsigned s = 0; s < kLanes; ++s) {
      ctx.spawn([&, s](screen::basic_screen_context<D>& c) {
        lane_line& line = pool[s];
        for (unsigned r = 0; r < kReps; ++r) {
          for (unsigned k = 0; k < kWords; ++k) {
            c.note_write(&line.w[k], sizeof(std::uint64_t), "lane word");
            line.w[k] += s + r + k;
          }
        }
      });
      if (s % 16 == 15) ctx.sync();  // keep the P-bags from growing unbounded
    }
    ctx.sync();
  });
  leg_result out;
  out.ns = sw.elapsed_ns();
  out.accesses = std::uint64_t{kLanes} * kReps * kWords;
#if CILKPP_MEMLENS_ENABLED
  if (with_lens) {
    ml.finish();
    if (!ml.clean()) {
      std::cerr << "bench_memlens_overhead: reports on the padded corpus\n";
      std::exit(1);
    }
    if (ml.stats().accesses != out.accesses) {
      std::cerr << "bench_memlens_overhead: analyzer saw "
                << ml.stats().accesses << " accesses, expected "
                << out.accesses << "\n";
      std::exit(1);
    }
  }
#endif
  return out;
}

template <typename Run>
leg_result best_of(const Run& run) {
  leg_result best;
  best.ns = ~std::uint64_t{0};
  for (unsigned i = 0; i < kRounds; ++i) {
    const leg_result r = run();
    if (r.ns < best.ns) best = r;
  }
  return best;
}

double per_access(const leg_result& r) {
  return static_cast<double>(r.ns) / static_cast<double>(r.accesses);
}

std::string fmt1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_memlens.json";
  if (argc > 1) out_path = argv[1];

  std::vector<lane_line> pool(kLanes);
  table t({"leg", "accesses", "ns/access"});
  json_writer w;
  w.begin_object();
  w.field("benchmark", "memlens_overhead");
  w.field("lanes", kLanes);
  w.field("reps", kReps);
  w.field("words_per_lane", kWords);
  w.field("compiled_in", bool{CILKPP_MEMLENS_ENABLED});
  w.key("legs");
  w.begin_object();

  bool ok = true;
  const auto engine_rows = [&](const char* engine, auto tag) {
    using D = typename decltype(tag)::type;
    const leg_result detached =
        best_of([&] { return screen_run<D>(pool, false); });
    t.add_row({std::string(engine) + ", memlens detached",
               std::to_string(detached.accesses), fmt1(per_access(detached))});
    w.key(std::string(engine) + "_detached");
    w.begin_object();
    w.field("ns_per_access", per_access(detached));
    w.field("accesses", detached.accesses);
    w.end_object();
#if CILKPP_MEMLENS_ENABLED
    const leg_result attached =
        best_of([&] { return screen_run<D>(pool, true); });
    t.add_row({std::string(engine) + ", memlens attached",
               std::to_string(attached.accesses), fmt1(per_access(attached))});
    const double ratio = per_access(detached) > 0
                             ? per_access(attached) / per_access(detached)
                             : 0.0;
    w.key(std::string(engine) + "_attached");
    w.begin_object();
    w.field("ns_per_access", per_access(attached));
    w.field("accesses", attached.accesses);
    w.field("overhead_x", ratio);
    w.end_object();
    // Catastrophic-only gate: the analyzer does O(accessors-on-line) work
    // per access; 50x over the bare engine means it grew a scan or an
    // allocation per access.
    if (ratio > 50.0) {
      std::fprintf(stderr, "FAIL: %s memlens overhead %.1fx > 50x\n", engine,
                   ratio);
      ok = false;
    }
#else
    t.add_row({std::string(engine) + ", memlens attached", "-",
               "compiled out"});
#endif
  };
  struct bags_tag { using type = cilkpp::screen::detector; };
  struct order_tag { using type = cilkpp::screen::order_detector; };
  engine_rows("sp-bags", bags_tag{});
  engine_rows("sp-order", order_tag{});

  w.end_object();  // legs
  w.end_object();

  std::cout << "# E-memlens: cache-line analyzer overhead\n";
  t.print(std::cout);

  const std::string doc = w.take();
  std::ofstream out(out_path);
  out << doc << "\n";
  if (!out) {
    std::cerr << "bench_memlens_overhead: cannot write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  return ok ? 0 : 1;
}
