// E1 (Fig. 2): the paper's example dag and every quantitative statement the
// paper makes about it — work 18, span 9, the 1≺2≺3≺6≺7≺8≺11≺12≺18 critical
// path, the relations 1≺2, 6≺12, 4‖9, and parallelism 18/9 = 2.
#include <iostream>
#include <sstream>

#include "dag/analysis.hpp"
#include "dag/dot.hpp"
#include "dag/generators.hpp"
#include "sim/machine.hpp"
#include "support/table.hpp"

int main() {
  using namespace cilkpp;
  using namespace cilkpp::dag;

  std::cout << "=== E1 / Fig. 2: the dag model of multithreading ===\n\n";
  const graph g = figure2_dag();
  const metrics m = analyze(g);

  table facts{"quantity", "paper", "this dag"};
  facts.row("vertices (instructions)", 18, static_cast<int>(g.num_vertices()));
  facts.row("work T1", 18, static_cast<int>(m.work));
  facts.row("span Tinf", 9, static_cast<int>(m.span));
  facts.row("parallelism T1/Tinf", 2.0, m.parallelism());
  facts.print(std::cout);

  std::cout << "\ncritical path (paper: 1 2 3 6 7 8 11 12 18):";
  for (vertex_id v : critical_path(g)) std::cout << ' ' << (v + 1);
  std::cout << '\n';

  auto rel = [&](int a, int b) {
    if (precedes(g, figure2_vertex(a), figure2_vertex(b))) return "precedes";
    if (precedes(g, figure2_vertex(b), figure2_vertex(a))) return "follows";
    return "parallel";
  };
  std::cout << "relation 1 vs 2:  " << rel(1, 2) << "   (paper: 1 precedes 2)\n";
  std::cout << "relation 6 vs 12: " << rel(6, 12) << "   (paper: 6 precedes 12)\n";
  std::cout << "relation 4 vs 9:  " << rel(4, 9) << "   (paper: 4 parallel 9)\n";

  // A concrete 2-processor work-stealing schedule of the dag, as a Gantt
  // chart (time flows right; each column is one unit-cost instruction).
  {
    sim::machine_config cfg;
    cfg.processors = 2;
    cfg.steal_latency = 1;
    cfg.seed = 5;
    cfg.collect_trace = true;
    const sim::sim_result r = sim::simulate(g, cfg);
    std::cout << "\n2-processor work-stealing schedule (T2 = " << r.makespan
              << ", laws' lower bound " << lower_bound_tp(m, 2)
              << ", exhaustive optimum 11 — see "
                 "tests/scheduling_theory_test.cpp):\n";
    for (unsigned p = 0; p < 2; ++p) {
      std::cout << "P" << p << " |";
      std::string row(static_cast<std::size_t>(r.makespan), '.');
      for (const sim::trace_entry& e : r.trace) {
        if (e.proc != p) continue;
        for (std::uint64_t t = e.start; t < e.end; ++t) {
          const int label = static_cast<int>(e.vertex) + 1;
          row[t] = static_cast<char>(label < 10 ? '0' + label
                                                : 'a' + (label - 10));
        }
      }
      std::cout << row << "|\n";
    }
    std::cout << "(digits/letters = instruction labels 1..9, a=10 .. i=18; "
                 "'.' = idle/stealing)\n";
  }

  std::cout << "\nGraphviz rendering (critical path highlighted):\n";
  write_dot(std::cout, g, {.name = "figure2", .show_work = false});
  return 0;
}
