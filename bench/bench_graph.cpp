// Galois-class graph analytics benchmark (ROADMAP "Galois-class graph
// analytics at scale"): parallel CSR construction + Brandes betweenness
// centrality + push-style PageRank on a 1M-edge RMAT graph, with the full
// certification ring run inline — differential checks against the serial
// references (BC bitwise, PageRank 1e-9 L1), a cilkview profile of each
// kernel's recorded dag, and a sim::machine predicted-speedup sweep at P up
// to 64. Emits BENCH_graph.json (same mold as BENCH_spawn_path.json);
// CI's perf-smoke job archives it.
//
// Thresholds are catastrophic-only: cilkview parallelism >= 8 for both
// kernels on the 1M-edge input (the ISSUE 8 acceptance gate — irregular
// graphs must still expose an order of magnitude of parallelism at this
// scale), plus the differential checks, which are exact contracts and not
// noise-sensitive at all.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cilkview/profile.hpp"
#include "dag/recorder.hpp"
#include "graph/bc.hpp"
#include "graph/generate.hpp"
#include "graph/pagerank.hpp"
#include "graph/ref.hpp"
#include "runtime/scheduler.hpp"
#include "sim/machine.hpp"
#include "support/stats.hpp"
#include "support/timing.hpp"

namespace {

using namespace cilkpp;

constexpr unsigned kScale = 17;             // 131072 vertices
constexpr std::uint64_t kEdges = 1'000'000; // the ISSUE's 1M-edge input
constexpr std::uint64_t kSeed = 2026;
constexpr std::uint64_t kGrain = 256;
constexpr std::uint32_t kPivots = 4;
constexpr std::uint32_t kIterations = 10;

void emit_iteration_stats(json_writer& w, const char* key,
                          const std::vector<graph::iteration_stats>& iters) {
  w.key(key);
  w.begin_array();
  for (const graph::iteration_stats& it : iters) {
    w.begin_object();
    w.field("iteration", it.index);
    w.field("active", it.active);
    w.field("claimed", it.claimed);
    w.field("items", it.hist.items);
    w.field("work", it.hist.work);
    w.field("max_work", it.hist.max_work);
    w.field("mean_work", it.hist.mean_work());
    w.field("top_bucket", it.hist.top_bucket());
    // Nonzero log2 buckets only: [bit_width, count] pairs.
    w.key("buckets");
    w.begin_array();
    for (unsigned b = 0; b < graph::work_histogram::bucket_count; ++b) {
      if (it.hist.buckets[b] == 0) continue;
      w.begin_array();
      w.value(b);
      w.value(it.hist.buckets[b]);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
}

void emit_profile(json_writer& w, const char* key,
                  const cilkview::profile& p) {
  w.key(key);
  w.begin_object();
  w.field("work", p.work);
  w.field("span", p.span);
  w.field("parallelism", p.parallelism());
  w.field("burdened_parallelism", p.burdened_parallelism());
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_graph.json";
  if (argc > 1) out_path = argv[1];

  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;

  const graph::bc_options bc_opt{
      .pivots = kPivots, .seed = 7, .grain = kGrain};
  const graph::pagerank_options pr_opt{.iterations = kIterations,
                                       .grain = kGrain};

  // --- Build (P = hw, then P = 1), with the serial builder as oracle. ---
  stopwatch sw;
  const graph::csr g_serial = graph::rmat_graph_serial(kScale, kEdges, kSeed);
  const double build_serial_s = sw.elapsed_s();

  rt::scheduler sched_hw(hw);
  rt::scheduler sched_1(1);

  sw.reset();
  const graph::csr g = sched_hw.run([&](rt::context& ctx) {
    return graph::rmat_graph(ctx, kScale, kEdges, kSeed, {}, kGrain);
  });
  const double build_hw_s = sw.elapsed_s();
  sw.reset();
  const graph::csr gt = sched_hw.run(
      [&](rt::context& ctx) { return graph::transpose(ctx, g, kGrain); });
  const double transpose_hw_s = sw.elapsed_s();

  const bool build_deterministic = (g == g_serial);
  const double skew = graph::top_decile_degree_mass(g);

  // --- Kernels at P = 1 and P = hw. ---
  sw.reset();
  const graph::bc_result bc_1 = sched_1.run(
      [&](rt::context& ctx) { return graph::betweenness(ctx, g, gt, bc_opt); });
  const double bc_1_s = sw.elapsed_s();
  sw.reset();
  const graph::bc_result bc_hw = sched_hw.run(
      [&](rt::context& ctx) { return graph::betweenness(ctx, g, gt, bc_opt); });
  const double bc_hw_s = sw.elapsed_s();

  sw.reset();
  const graph::pagerank_result pr_1 = sched_1.run(
      [&](rt::context& ctx) { return graph::pagerank(ctx, g, gt, pr_opt); });
  const double pr_1_s = sw.elapsed_s();
  sw.reset();
  const graph::pagerank_result pr_hw = sched_hw.run(
      [&](rt::context& ctx) { return graph::pagerank(ctx, g, gt, pr_opt); });
  const double pr_hw_s = sw.elapsed_s();

  // --- Differential ring on the full-size input. ---
  sw.reset();
  const std::vector<double> bc_ref = graph::bc_serial(
      g, gt, graph::sample_pivots(g.vertices(), bc_opt.pivots, bc_opt.seed));
  const double bc_serial_s = sw.elapsed_s();
  sw.reset();
  const graph::pagerank_serial_result pr_ref =
      graph::pagerank_serial(g, gt, pr_opt.damping, pr_opt.iterations);
  const double pr_serial_s = sw.elapsed_s();

  const bool bc_exact =
      bc_hw.centrality == bc_ref && bc_1.centrality == bc_ref;
  double pr_l1 = 0.0;
  for (std::size_t i = 0; i < pr_ref.rank.size(); ++i) {
    pr_l1 += std::abs(pr_hw.rank[i] - pr_ref.rank[i]);
  }
  const bool pr_p_identical = pr_hw.rank == pr_1.rank;

  // --- cilkview profile + sim::machine sweep on each kernel's dag. ---
  const dag::graph bc_dag = dag::record([&](dag::recorder_context& ctx) {
    (void)graph::betweenness(ctx, g, gt, bc_opt);
  });
  const dag::graph pr_dag = dag::record([&](dag::recorder_context& ctx) {
    (void)graph::pagerank(ctx, g, gt, pr_opt);
  });
  const cilkview::profile bc_prof = cilkview::analyze_dag(bc_dag);
  const cilkview::profile pr_prof = cilkview::analyze_dag(pr_dag);

  const std::vector<unsigned> procs{1, 2, 4, 8, 16, 32, 64};
  sim::machine_config cfg;
  cfg.steal_latency = 20;
  cfg.seed = 1;
  const std::vector<sim::sim_result> bc_sim =
      sim::simulate_sweep(bc_dag, cfg, procs);
  const std::vector<sim::sim_result> pr_sim =
      sim::simulate_sweep(pr_dag, cfg, procs);

  // --- Thresholds (catastrophic-only for timings; exact for contracts). ---
  constexpr double parallelism_min = 8.0;
  constexpr double pr_l1_max = 1e-9;
  bool ok = true;
  if (!build_deterministic) {
    std::fprintf(stderr, "FAIL: parallel build != serial build\n");
    ok = false;
  }
  if (!bc_exact) {
    std::fprintf(stderr, "FAIL: BC differs from serial Brandes reference\n");
    ok = false;
  }
  if (!pr_p_identical) {
    std::fprintf(stderr, "FAIL: PageRank differs between P=1 and P=%u\n", hw);
    ok = false;
  }
  if (pr_l1 > pr_l1_max) {
    std::fprintf(stderr, "FAIL: PageRank L1 vs serial %.3e > %.0e\n", pr_l1,
                 pr_l1_max);
    ok = false;
  }
  if (bc_prof.parallelism() < parallelism_min) {
    std::fprintf(stderr, "FAIL: BC parallelism %.1f < %.0f\n",
                 bc_prof.parallelism(), parallelism_min);
    ok = false;
  }
  if (pr_prof.parallelism() < parallelism_min) {
    std::fprintf(stderr, "FAIL: PageRank parallelism %.1f < %.0f\n",
                 pr_prof.parallelism(), parallelism_min);
    ok = false;
  }

  json_writer w;
  w.begin_object();
  w.field("benchmark", "graph");
  w.field("hardware_concurrency", hw);
  w.key("graph");
  w.begin_object();
  w.field("kind", "rmat");
  w.field("scale", kScale);
  w.field("vertices", g.vertices());
  w.field("edges", g.edges());
  w.field("seed", kSeed);
  w.field("top_decile_degree_mass", skew);
  w.field("build_serial_s", build_serial_s);
  w.field("build_parallel_s", build_hw_s);
  w.field("transpose_parallel_s", transpose_hw_s);
  w.field("deterministic", build_deterministic);
  w.end_object();
  w.key("bc");
  w.begin_object();
  w.field("pivots", bc_opt.pivots);
  w.field("grain", bc_opt.grain);
  w.field("serial_s", bc_serial_s);
  w.field("p1_s", bc_1_s);
  w.field("phw_s", bc_hw_s);
  w.field("speedup_vs_p1", bc_hw_s > 0 ? bc_1_s / bc_hw_s : 0.0);
  w.field("exact_vs_serial", bc_exact);
  emit_iteration_stats(w, "levels", bc_hw.levels);
  w.end_object();
  w.key("pagerank");
  w.begin_object();
  w.field("iterations", pr_opt.iterations);
  w.field("grain", pr_opt.grain);
  w.field("serial_s", pr_serial_s);
  w.field("p1_s", pr_1_s);
  w.field("phw_s", pr_hw_s);
  w.field("speedup_vs_p1", pr_hw_s > 0 ? pr_1_s / pr_hw_s : 0.0);
  w.field("l1_vs_serial", pr_l1);
  w.field("bitwise_p1_vs_phw", pr_p_identical);
  w.field("final_residual",
          pr_hw.residuals.empty() ? 0.0 : pr_hw.residuals.back());
  emit_iteration_stats(w, "iters", pr_hw.iters);
  w.end_object();
  w.key("cilkview");
  w.begin_object();
  emit_profile(w, "bc", bc_prof);
  emit_profile(w, "pagerank", pr_prof);
  w.end_object();
  w.key("sim");
  w.begin_object();
  w.key("processors");
  w.begin_array();
  for (const unsigned p : procs) w.value(p);
  w.end_array();
  w.key("bc_speedup");
  w.begin_array();
  for (const sim::sim_result& r : bc_sim) w.value(r.speedup(bc_prof.work));
  w.end_array();
  w.key("pagerank_speedup");
  w.begin_array();
  for (const sim::sim_result& r : pr_sim) w.value(r.speedup(pr_prof.work));
  w.end_array();
  w.end_object();
  w.key("thresholds");
  w.begin_object();
  w.field("parallelism_min", parallelism_min);
  w.field("pagerank_l1_max", pr_l1_max);
  w.field("passed", ok);
  w.end_object();
  w.end_object();

  const std::string doc = w.take();
  std::ofstream out(out_path);
  out << doc;
  out.close();
  std::printf("%s", doc.c_str());
  std::printf("wrote %s\n", out_path);
  return ok ? 0 : 1;
}
